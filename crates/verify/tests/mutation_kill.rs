//! Mutation-kill suite: deliberately corrupted plans, each of which the
//! verifier must reject — and each with a *distinct* [`VerifyError`]
//! variant, proving the taxonomy actually discriminates failure modes
//! instead of funnelling everything into one generic error. Mutations 7–9
//! target the lane-lifting path that turns a scalar proof into a block
//! (SpMM) certificate.

use std::sync::Arc;
use symspmv_core::symbolic;
use symspmv_csx::encode::encode_coo;
use symspmv_csx::DetectConfig;
use symspmv_runtime::reduction::{IndexingReduction, ReductionStrategy};
use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights, Range};
use symspmv_sparse::dense::seeded_vector;
use symspmv_sparse::symmetry::SymmetryKind;
use symspmv_sparse::{CooMatrix, Permutation, SssMatrix};
use symspmv_verify::{
    certify_color, certify_csx_chunk, certify_race, certify_race_symbolic, certify_sym,
    certify_sym_symbolic, lift_sym_certificate, lift_symbolic, ColoringFacts, ProofForm,
    RaceCertificate, StructureFacts, SymPlanRef, SymStrategyKind, VerifyError,
};

/// A banded symmetric test matrix with cross-partition conflicts.
fn matrix(n: u32) -> SssMatrix {
    let coo = symspmv_sparse::gen::banded_random(n, 12, 6.0, 99);
    SssMatrix::from_coo(&coo, 0.0).unwrap()
}

struct GoodPlan {
    parts: Vec<Range>,
    offsets: Vec<usize>,
    local_len: usize,
    entries: Vec<symspmv_runtime::reduction::IndexEntry>,
    splits: Vec<usize>,
    row_chunks: Vec<Range>,
}

/// Derives a correct indexing-strategy plan the mutations start from.
fn good_plan(sss: &SssMatrix, p: usize) -> GoodPlan {
    let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), p);
    let index = symbolic::analyze(sss, &parts);
    let strategy: Arc<dyn ReductionStrategy> = Arc::new(IndexingReduction);
    let layout = strategy.layout(sss.n() as usize, &parts);
    let row_chunks = balanced_ranges(&vec![1u64; sss.n() as usize], p);
    GoodPlan {
        parts,
        offsets: layout.offsets,
        local_len: layout.flat_len,
        entries: index.entries,
        splits: index.splits,
        row_chunks,
    }
}

fn certify(
    sss: &SssMatrix,
    plan: &GoodPlan,
    kind: SymStrategyKind,
) -> Result<RaceCertificate, VerifyError> {
    certify_sym(
        sss,
        &SymPlanRef {
            parts: &plan.parts,
            offsets: &plan.offsets,
            local_len: plan.local_len,
            strategy: kind,
            entries: &plan.entries,
            splits: &plan.splits,
            row_chunks: &plan.row_chunks,
        },
    )
}

#[test]
fn unmutated_plan_certifies() {
    let sss = matrix(256);
    let plan = good_plan(&sss, 4);
    let cert = certify(&sss, &plan, SymStrategyKind::Indexing).unwrap();
    assert!(cert.proves("disjoint-direct"));
    assert!(cert.proves("reduction-slice"));
}

/// Mutation 1 — off-by-one partition boundary: thread 1 starts one row
/// late, leaving a row nobody owns.
#[test]
fn mutation_shifted_boundary_leaves_gap() {
    let sss = matrix(256);
    let mut plan = good_plan(&sss, 4);
    let orphan = plan.parts[1].start;
    plan.parts[1].start += 1;
    let err = certify(&sss, &plan, SymStrategyKind::Indexing).unwrap_err();
    assert_eq!(err, VerifyError::PartitionGap { at: orphan });
}

/// Mutation 2 — duplicated row: thread 1 reaches one row into thread 0's
/// partition, so both threads write it directly.
#[test]
fn mutation_stolen_row_overlaps_direct_writes() {
    let sss = matrix(256);
    let mut plan = good_plan(&sss, 4);
    plan.parts[1].start -= 1;
    let err = certify(&sss, &plan, SymStrategyKind::Indexing).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::OverlappingDirectWrites {
                first: 0,
                second: 1,
                ..
            }
        ),
        "{err:?}"
    );
}

/// Mutation 3 — bad color: move a row into a class whose rows share one of
/// its write targets.
#[test]
fn mutation_bad_color_conflicts() {
    let sss = matrix(256);
    let coloring = symspmv_core::sym_color::color_rows(&sss);
    assert!(certify_color(&sss, &coloring.classes).is_ok());

    // Find a row coupled to another row and force them into one class.
    let mut classes = coloring.classes.clone();
    let (victim, neighbor) = (0..sss.n())
        .find_map(|r| sss.row(r).0.first().map(|&c| (r, c)))
        .expect("banded matrix has off-diagonal entries");
    for class in &mut classes {
        class.retain(|&r| r != victim);
    }
    let home = classes
        .iter()
        .position(|c| c.contains(&neighbor))
        .expect("neighbor is colored");
    classes[home].push(victim);
    classes[home].sort_unstable();
    let err = certify_color(&sss, &classes).unwrap_err();
    assert!(
        matches!(err, VerifyError::ColoringConflict { .. }),
        "{err:?}"
    );
}

/// Mutation 4 — straddling CSX pattern: an encoding computed without the
/// chunk's column split produces a substructure whose transposed writes
/// fall on both sides of the local-vs-direct boundary.
#[test]
fn mutation_straddling_csx_pattern() {
    let n = 64u32;
    let mut coo = CooMatrix::new(n, n);
    // A horizontal run in row 40 crossing the split at 32.
    for c in 28..36 {
        coo.push(40, c, 1.0);
    }
    let stream = encode_coo(&coo, &DetectConfig::default()); // no col_split
    let err = certify_csx_chunk(&stream, Range { start: 32, end: n }, 1).unwrap_err();
    assert!(
        matches!(err, VerifyError::StraddlingPattern { split: 32, .. }),
        "{err:?}"
    );

    // The split-aware encoding of the same rows is accepted.
    let legal = encode_coo(
        &coo,
        &DetectConfig {
            col_split: Some(32),
            ..DetectConfig::default()
        },
    );
    certify_csx_chunk(&legal, Range { start: 32, end: n }, 1).unwrap();
}

/// Mutation 5 — overlapping reduction slice: move a split boundary so two
/// threads' reduction slices share an `idx` value (both would fold — and
/// re-zero — the same output element).
#[test]
fn mutation_overlapping_reduction_slice() {
    // Every row couples to row 0, so each non-first partition contributes
    // an entry with idx 0 and the index groups them adjacently.
    let n = 64u32;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
    }
    for r in 1..n {
        coo.push(r, 0, -1.0);
        coo.push(0, r, -1.0);
    }
    let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
    let mut plan = good_plan(&sss, 4);
    assert!(plan.entries.iter().filter(|e| e.idx == 0).count() >= 2);
    assert!(certify(&sss, &plan, SymStrategyKind::Indexing).is_ok());

    // The analyzer placed all idx-0 entries in one slice; force a split
    // boundary between two of them.
    plan.splits = vec![
        0,
        1,
        plan.entries.len(),
        plan.entries.len(),
        plan.entries.len(),
    ];
    let err = certify(&sss, &plan, SymStrategyKind::Indexing).unwrap_err();
    assert_eq!(
        err,
        VerifyError::ReductionSliceOverlap {
            idx: 0,
            first: 0,
            second: 1
        }
    );
}

/// Mutation 6 — stale certificate: a certificate minted for the original
/// numbering is presented after the matrix was renumbered.
#[test]
fn mutation_stale_certificate_after_renumbering() {
    let n = 256u32;
    let coo = symspmv_sparse::gen::banded_random(n, 12, 6.0, 99);
    let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
    let plan = good_plan(&sss, 4);
    let cert = certify(&sss, &plan, SymStrategyKind::Indexing).unwrap();
    cert.validate_for(sss.fingerprint(), 4, "sym-sss", "idx")
        .unwrap();

    // Renumber with a reversal permutation; same values, new structure.
    let order: Vec<u32> = (0..n).rev().collect();
    let perm = Permutation::from_order(&order).unwrap();
    let renumbered = SssMatrix::from_coo(&perm.apply_symmetric(&coo).unwrap(), 0.0).unwrap();
    assert_ne!(sss.fingerprint(), renumbered.fingerprint());

    let err = cert
        .validate_for(renumbered.fingerprint(), 4, "sym-sss", "idx")
        .unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::StaleCertificate {
                field: "fingerprint",
                ..
            }
        ),
        "{err:?}"
    );
}

/// Correctly lane-scaled lifting succeeds and records what it proved.
#[test]
fn unmutated_lane_lifting_certifies() {
    let sss = matrix(256);
    let plan = good_plan(&sss, 4);
    let base = certify(&sss, &plan, SymStrategyKind::Indexing).unwrap();
    let lanes = 8;
    let block_offsets: Vec<usize> = plan.offsets.iter().map(|o| o * lanes).collect();
    let cert = lift_sym_certificate(
        &base,
        lanes,
        &plan.offsets,
        plan.local_len,
        &block_offsets,
        plan.local_len * lanes,
    )
    .unwrap();
    assert_eq!(cert.lanes, lanes);
    assert!(cert.proves("lane-lifted"));
    assert_eq!(cert.local_elems, base.local_elems * lanes);
    // The lifted certificate still validates for the same dispatch key.
    cert.validate_for(sss.fingerprint(), 4, "sym-sss", "idx")
        .unwrap();
}

/// Mutation 7 — lane-shifted block offset: thread 1's block region starts
/// one element late, so its lane groups drift off the scalar proof's
/// tiling (and its last group would escape into thread 2's region).
#[test]
fn mutation_shifted_block_offset_rejected() {
    let sss = matrix(256);
    let plan = good_plan(&sss, 4);
    let base = certify(&sss, &plan, SymStrategyKind::Indexing).unwrap();
    let lanes = 4;
    let mut block_offsets: Vec<usize> = plan.offsets.iter().map(|o| o * lanes).collect();
    block_offsets[1] += 1;
    let err = lift_sym_certificate(
        &base,
        lanes,
        &plan.offsets,
        plan.local_len,
        &block_offsets,
        plan.local_len * lanes,
    )
    .unwrap_err();
    assert_eq!(
        err,
        VerifyError::LaneOffsetMismatch {
            tid: 1,
            expected: plan.offsets[1] * lanes,
            actual: plan.offsets[1] * lanes + 1,
        }
    );
}

/// Mutation 8 — short block store: the lease forgot to scale by the lane
/// count, so the last thread's lifted region escapes the store.
#[test]
fn mutation_short_block_store_rejected() {
    let sss = matrix(256);
    let plan = good_plan(&sss, 4);
    let base = certify(&sss, &plan, SymStrategyKind::Indexing).unwrap();
    let lanes = 4;
    let block_offsets: Vec<usize> = plan.offsets.iter().map(|o| o * lanes).collect();
    let err = lift_sym_certificate(
        &base,
        lanes,
        &plan.offsets,
        plan.local_len,
        &block_offsets,
        plan.local_len, // unscaled — too short by (lanes-1)·local_len
    )
    .unwrap_err();
    assert_eq!(
        err,
        VerifyError::LaneRegionMismatch {
            expected: plan.local_len * lanes,
            actual: plan.local_len,
        }
    );
}

/// Mutation 9 — unsupported lane count: lifting must refuse widths the
/// block kernels are not written for (stack accumulators are MAX_LANES
/// wide; a wider block would silently truncate).
#[test]
fn mutation_unsupported_lane_count_rejected() {
    let sss = matrix(256);
    let plan = good_plan(&sss, 4);
    let base = certify(&sss, &plan, SymStrategyKind::Indexing).unwrap();
    for lanes in [0usize, 3, 32] {
        let block_offsets: Vec<usize> = plan.offsets.iter().map(|o| o * lanes).collect();
        let err = lift_sym_certificate(
            &base,
            lanes,
            &plan.offsets,
            plan.local_len,
            &block_offsets,
            plan.local_len * lanes,
        )
        .unwrap_err();
        assert_eq!(err, VerifyError::BadLaneCount { lanes });
    }
}

/// Mutation 10 — dropped sign flip: a kernel that forgets the skew mirror
/// negation computes `D·x + L·x + Lᵀ·x` instead of `D·x + L·x − Lᵀ·x`.
/// The mutant is simulated from the same storage the real kernel uses;
/// the serial reference comparison (the oracle's 1e-12 check) must see a
/// macroscopic difference, i.e. any such mutant is killed, not tolerated.
#[test]
fn mutation_dropped_skew_sign_flip_is_killed() {
    let n = 128u32;
    let coo = symspmv_sparse::gen::skew_convection(n, 9, 5.0, 7);
    let skew = SssMatrix::from_coo_kind(&coo, SymmetryKind::Skew, 0.0).unwrap();
    let x = seeded_vector(n as usize, 3);
    let mut y = vec![0.0; n as usize];
    skew.spmv(&x, &mut y);

    // The mutant: identical storage, mirror contribution `+v` instead of
    // `-v` (the Symmetric ops applied to Skew storage).
    let mut y_mut = vec![0.0; n as usize];
    for r in 0..n {
        let (cols, vals) = skew.row(r);
        let ru = r as usize;
        y_mut[ru] += skew.dvalues()[ru] * x[ru];
        for (&c, &v) in cols.iter().zip(vals) {
            y_mut[ru] += v * x[c as usize];
            y_mut[c as usize] += v * x[ru];
        }
    }
    let max_diff = y
        .iter()
        .zip(&y_mut)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_diff > 1e-6,
        "sign-flip mutant indistinguishable from the kernel: max diff {max_diff}"
    );
}

/// Mutation 11 — pair array swapped: a kernel that mirrors a structural
/// matrix with the *lower* value (ignoring the paired upper array)
/// computes the symmetrized matrix, not A. Killed the same way.
#[test]
fn mutation_swapped_pair_array_is_killed() {
    let n = 96u32;
    let coo = symspmv_sparse::gen::structural_random(n, 6.0, 0.7, 10, 23);
    let m = SssMatrix::from_coo_kind(&coo, SymmetryKind::Structural, 0.0).unwrap();
    let x = seeded_vector(n as usize, 5);
    let mut y = vec![0.0; n as usize];
    m.spmv(&x, &mut y);

    // The mutant: mirror with `v` (the lower value) where the paired
    // upper value belongs.
    let mut y_mut = vec![0.0; n as usize];
    for r in 0..n {
        let (cols, vals) = m.row(r);
        let ru = r as usize;
        y_mut[ru] += m.dvalues()[ru] * x[ru];
        for (&c, &v) in cols.iter().zip(vals) {
            y_mut[ru] += v * x[c as usize];
            y_mut[c as usize] += v * x[ru];
        }
    }
    let max_diff = y
        .iter()
        .zip(&y_mut)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_diff > 1e-6,
        "pair-swap mutant indistinguishable from the kernel: max diff {max_diff}"
    );
}

/// The kind side conditions and tags survive the certificate round trip.
#[test]
fn kind_certificates_round_trip_and_prove_side_conditions() {
    let n = 128u32;
    let skew = SssMatrix::from_coo_kind(
        &symspmv_sparse::gen::skew_convection(n, 9, 5.0, 7),
        SymmetryKind::Skew,
        0.0,
    )
    .unwrap();
    let plan = good_plan(&skew, 4);
    let cert = certify(&skew, &plan, SymStrategyKind::Indexing).unwrap();
    assert_eq!(cert.symmetry, "skew");
    assert!(cert.proves("skew-zero-diagonal"));
    let parsed = RaceCertificate::from_text(&cert.to_text()).unwrap();
    assert_eq!(parsed, cert);

    let st = SssMatrix::from_coo_kind(
        &symspmv_sparse::gen::structural_random(n, 6.0, 0.7, 10, 23),
        SymmetryKind::Structural,
        0.0,
    )
    .unwrap();
    let plan = good_plan(&st, 4);
    let cert = certify(&st, &plan, SymStrategyKind::Indexing).unwrap();
    assert_eq!(cert.symmetry, "structural");
    assert!(cert.proves("structural-paired"));

    // Pre-kind texts (no `symmetry` key) parse as symmetric.
    let legacy = cert
        .to_text()
        .lines()
        .filter(|l| !l.starts_with("symmetry="))
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(
        RaceCertificate::from_text(&legacy).unwrap().symmetry,
        "symmetric"
    );
}

/// Re-derives the per-thread conflict profiles the symbolic certifier
/// consumes (the enumerative checker re-walks the matrix itself).
fn conflicts_for(sss: &SssMatrix, parts: &[Range]) -> Vec<Vec<u32>> {
    symbolic::analyze(sss, parts).conflicts
}

fn certify_symbolically(
    sss: &SssMatrix,
    plan: &GoodPlan,
    kind: SymStrategyKind,
) -> Result<RaceCertificate, VerifyError> {
    certify_sym_symbolic(
        &StructureFacts::of(sss),
        &SymPlanRef {
            parts: &plan.parts,
            offsets: &plan.offsets,
            local_len: plan.local_len,
            strategy: kind,
            entries: &plan.entries,
            splits: &plan.splits,
            row_chunks: &plan.row_chunks,
        },
        &conflicts_for(sss, &plan.parts),
    )
}

/// The symbolic certifier kills the same plan mutants as the enumerative
/// one, with the identical typed errors — replayed here for mutations 1,
/// 2 and 5 (the plan-shape mutants the abstract domain must see through).
#[test]
fn symbolic_certifier_kills_the_same_plan_mutants() {
    let sss = matrix(256);

    let clean = good_plan(&sss, 4);
    let cert = certify_symbolically(&sss, &clean, SymStrategyKind::Indexing).unwrap();
    assert_eq!(cert.proof, ProofForm::Symbolic);

    // Mutation 1 replay: shifted boundary.
    let mut plan = good_plan(&sss, 4);
    let orphan = plan.parts[1].start;
    plan.parts[1].start += 1;
    assert_eq!(
        certify_symbolically(&sss, &plan, SymStrategyKind::Indexing).unwrap_err(),
        VerifyError::PartitionGap { at: orphan }
    );

    // Mutation 2 replay: stolen row.
    let mut plan = good_plan(&sss, 4);
    plan.parts[1].start -= 1;
    assert!(matches!(
        certify_symbolically(&sss, &plan, SymStrategyKind::Indexing).unwrap_err(),
        VerifyError::OverlappingDirectWrites {
            first: 0,
            second: 1,
            ..
        }
    ));

    // Mutation 5 replay: overlapping reduction slice (on the idx-heavy
    // star matrix from mutation 5).
    let n = 64u32;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
    }
    for r in 1..n {
        coo.push(r, 0, -1.0);
        coo.push(0, r, -1.0);
    }
    let star = SssMatrix::from_coo(&coo, 0.0).unwrap();
    let mut plan = good_plan(&star, 4);
    plan.splits = vec![
        0,
        1,
        plan.entries.len(),
        plan.entries.len(),
        plan.entries.len(),
    ];
    assert_eq!(
        certify_symbolically(&star, &plan, SymStrategyKind::Indexing).unwrap_err(),
        VerifyError::ReductionSliceOverlap {
            idx: 0,
            first: 0,
            second: 1
        }
    );
}

/// Mutation 12 — cross-axis (kind × lanes): a kind-flipped certificate
/// request on a lane-lifted plan. The structure facts of a symmetric
/// matrix (nonzero diagonal) are presented as skew; the symbolic
/// certifier must refuse at the kind side condition *before* any lifting
/// can launder the mismatch into a block certificate.
#[test]
fn mutation_kind_flipped_facts_on_lifted_plan_rejected() {
    let sss = matrix(256);
    let plan = good_plan(&sss, 4);

    // The honest pipeline works: symbolic scalar proof, then lane lift.
    let base = certify_symbolically(&sss, &plan, SymStrategyKind::Indexing).unwrap();
    let lanes = 8;
    let block_offsets: Vec<usize> = plan.offsets.iter().map(|o| o * lanes).collect();
    let lifted = lift_symbolic(
        &base,
        lanes,
        &plan.offsets,
        plan.local_len,
        &block_offsets,
        plan.local_len * lanes,
    )
    .unwrap();
    assert_eq!(lifted.proof, ProofForm::Symbolic);
    assert!(lifted.proves("lane-lifted"));

    // The mutant: same matrix, same plan, kind flipped to skew.
    let mut facts = StructureFacts::of(&sss);
    assert!(facts.nonzero_diag.is_some(), "banded_random has a diagonal");
    facts.kind = SymmetryKind::Skew;
    let err = certify_sym_symbolic(
        &facts,
        &SymPlanRef {
            parts: &plan.parts,
            offsets: &plan.offsets,
            local_len: plan.local_len,
            strategy: SymStrategyKind::Indexing,
            entries: &plan.entries,
            splits: &plan.splits,
            row_chunks: &plan.row_chunks,
        },
        &conflicts_for(&sss, &plan.parts),
    )
    .unwrap_err();
    assert!(
        matches!(err, VerifyError::KindSideCondition { kind: "skew", .. }),
        "{err:?}"
    );
}

/// Mutation 13 — cross-axis (lanes × kind): a lane-offset mutant on a
/// *skew* plan. The skew side conditions pass (the matrix really is
/// skew), but the block region of thread 2 drifts off the lane-scaled
/// image of the scalar proof; `lift_symbolic` must catch the drift.
#[test]
fn mutation_lane_offset_on_skew_plan_rejected() {
    let n = 128u32;
    let skew = SssMatrix::from_coo_kind(
        &symspmv_sparse::gen::skew_convection(n, 9, 5.0, 7),
        SymmetryKind::Skew,
        0.0,
    )
    .unwrap();
    let plan = good_plan(&skew, 4);
    let base = certify_symbolically(&skew, &plan, SymStrategyKind::Indexing).unwrap();
    assert_eq!(base.symmetry, "skew");
    assert_eq!(base.proof, ProofForm::Symbolic);

    let lanes = 4;
    let mut block_offsets: Vec<usize> = plan.offsets.iter().map(|o| o * lanes).collect();
    block_offsets[2] += 2;
    let err = lift_symbolic(
        &base,
        lanes,
        &plan.offsets,
        plan.local_len,
        &block_offsets,
        plan.local_len * lanes,
    )
    .unwrap_err();
    assert_eq!(
        err,
        VerifyError::LaneOffsetMismatch {
            tid: 2,
            expected: plan.offsets[2] * lanes,
            actual: plan.offsets[2] * lanes + 2,
        }
    );
}

/// A path matrix `0 — 1 — … — n-1`: the lower-triangle write set of row
/// `r` is `{r-1, r}`, so the mod-3 level grouping below is exactly
/// distance-2 disjoint and any boundary slip collides two adjacent rows.
fn path_matrix(n: u32) -> SssMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
    }
    for r in 1..n {
        coo.push(r, r - 1, -1.0);
        coo.push(r - 1, r, -1.0);
    }
    SssMatrix::from_coo(&coo, 0.0).unwrap()
}

/// A star matrix (hub 0, leaves 1..=k): every leaf's write set contains
/// the hub, so any grouping that puts two leaves together is racy — the
/// fixture on which a distance-*1* coloring is maximally wrong.
fn star_matrix(k: u32) -> SssMatrix {
    let n = k + 1;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
    }
    for i in 1..n {
        coo.push(i, 0, -1.0);
        coo.push(0, i, -1.0);
    }
    SssMatrix::from_coo(&coo, 0.0).unwrap()
}

/// Single-thread per-group tilings for hand-built group tables.
fn serial_parts(groups: &[Vec<u32>]) -> Vec<Vec<Range>> {
    groups
        .iter()
        .map(|g| {
            vec![Range {
                start: 0,
                end: g.len() as u32,
            }]
        })
        .collect()
}

/// The hand-built mod-3 level grouping of the path: `levels[r] = r`,
/// one subcolor per phase, `group_of[r] = r % 3`.
fn path_grouping(n: u32) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<Vec<u32>>) {
    let levels: Vec<u32> = (0..n).collect();
    let subcolors = vec![0u32; n as usize];
    let group_of: Vec<u32> = (0..n).map(|r| r % 3).collect();
    let mut groups = vec![Vec::new(); 3];
    for r in 0..n {
        groups[(r % 3) as usize].push(r);
    }
    (levels, subcolors, group_of, groups)
}

/// The hand-built level grouping of the star: hub at level 0, leaves at
/// level 1 with one subcolor each (they all conflict through the hub).
fn star_grouping(k: u32) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<Vec<u32>>) {
    let n = (k + 1) as usize;
    let mut levels = vec![1u32; n];
    levels[0] = 0;
    let subcolors: Vec<u32> = (0..n as u32).map(|r| r.saturating_sub(1)).collect();
    let group_of: Vec<u32> = (0..n as u32).collect();
    let groups: Vec<Vec<u32>> = (0..n as u32).map(|r| vec![r]).collect();
    (levels, subcolors, group_of, groups)
}

/// The unmutated colorings certify in both certifiers — and produce the
/// *identical* certificate, so the kill tests below start from a proven
/// baseline in each pipeline.
#[test]
fn unmutated_colorings_certify_in_both_certifiers() {
    let path = path_matrix(12);
    let (levels, subcolors, group_of, groups) = path_grouping(12);
    let parts = serial_parts(&groups);
    let enumerative = certify_race(&path, &groups, &parts, 1).unwrap();
    let coloring = ColoringFacts::establish(&path, &levels, &subcolors).unwrap();
    let symbolic_cert = certify_race_symbolic(
        &StructureFacts::of(&path),
        &coloring,
        &group_of,
        &groups,
        &parts,
        1,
    )
    .unwrap();
    assert_eq!(enumerative, symbolic_cert);
    assert!(matches!(
        enumerative.proof,
        ProofForm::ColoringDisjoint { reach: 2, .. }
    ));

    let star = star_matrix(6);
    let (levels, subcolors, group_of, groups) = star_grouping(6);
    let parts = serial_parts(&groups);
    let enumerative = certify_race(&star, &groups, &parts, 1).unwrap();
    let coloring = ColoringFacts::establish(&star, &levels, &subcolors).unwrap();
    let symbolic_cert = certify_race_symbolic(
        &StructureFacts::of(&star),
        &coloring,
        &group_of,
        &groups,
        &parts,
        1,
    )
    .unwrap();
    assert_eq!(enumerative, symbolic_cert);
}

/// Mutation 14 — merged adjacent groups: the hub's singleton group
/// swallows leaf 1. Both rows write `y[0]`, so the enumerative stamping
/// and the symbolic class axiom must each refuse.
#[test]
fn mutation_merged_adjacent_groups_killed_by_both() {
    let star = star_matrix(6);
    let (mut levels, mut subcolors, _, groups) = star_grouping(6);

    // Enumerative form of the merge: one group table holding both rows.
    let mut merged: Vec<Vec<u32>> = vec![vec![0, 1]];
    merged.extend(groups[2..].iter().cloned());
    let parts = serial_parts(&merged);
    let err = certify_race(&star, &merged, &parts, 1).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::ColoringConflict {
                row_a: 0,
                row_b: 1,
                target: 0,
                ..
            }
        ),
        "{err:?}"
    );

    // Symbolic form: leaf 1 claims the hub's (level, subcolor) class.
    levels[1] = 0;
    subcolors[1] = 0;
    let err = ColoringFacts::establish(&star, &levels, &subcolors).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::ColoringConflict {
                row_a: 0,
                row_b: 1,
                target: 0,
                ..
            }
        ),
        "{err:?}"
    );
}

/// Mutation 15 — group boundary off by one: row 3 of the path slips from
/// its mod-3 group into the next one, landing beside its level-4
/// neighbor. The enumerative checker sees rows 3 and 4 collide on target
/// 3; the symbolic certifier sees the level structure itself break (the
/// stored edge (3, 2) now spans two levels).
#[test]
fn mutation_group_boundary_off_by_one_killed_by_both() {
    let path = path_matrix(12);
    let (mut levels, subcolors, _, mut groups) = path_grouping(12);

    // Enumerative form: move row 3 into the neighboring group.
    groups[0].retain(|&r| r != 3);
    groups[1].push(3);
    groups[1].sort_unstable();
    let parts = serial_parts(&groups);
    let err = certify_race(&path, &groups, &parts, 1).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::ColoringConflict {
                row_a: 3,
                row_b: 4,
                target: 3,
                ..
            }
        ),
        "{err:?}"
    );

    // Symbolic form: the same slip as a level boundary off by one.
    levels[3] = 4;
    let err = ColoringFacts::establish(&path, &levels, &subcolors).unwrap_err();
    assert!(matches!(err, VerifyError::MalformedPlan { .. }), "{err:?}");
}

/// Mutation 16 — distance dropped from 2 to 1: a proper *vertex* coloring
/// of the star (hub one color, all leaves the other) is distance-1 valid
/// but distance-2 racy — every leaf writes the hub. Both certifiers must
/// reject the two-group schedule it induces.
#[test]
fn mutation_distance_one_coloring_killed_by_both() {
    let star = star_matrix(6);

    // Enumerative form: the two distance-1 color classes as groups.
    let groups: Vec<Vec<u32>> = vec![vec![0], (1..=6).collect()];
    let parts = serial_parts(&groups);
    let err = certify_race(&star, &groups, &parts, 1).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::ColoringConflict {
                row_a: 1,
                row_b: 2,
                target: 0,
                ..
            }
        ),
        "{err:?}"
    );

    // Symbolic form: all leaves share subcolor 0 in level 1 — the class
    // axiom catches the shared hub target.
    let (levels, _, _, _) = star_grouping(6);
    let subcolors = vec![0u32; 7];
    let err = ColoringFacts::establish(&star, &levels, &subcolors).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::ColoringConflict {
                row_a: 1,
                row_b: 2,
                target: 0,
                ..
            }
        ),
        "{err:?}"
    );
}

/// The kill-count pin: one entry per seeded mutant in this suite. A new
/// mutant must be added here (and a removed one deleted), so the count
/// can only change deliberately.
#[test]
fn mutation_kill_count_is_pinned() {
    const KILLED: [&str; 16] = [
        "shifted-boundary",
        "stolen-row",
        "bad-color",
        "straddling-csx-pattern",
        "overlapping-reduction-slice",
        "stale-certificate",
        "lane-shifted-block-offset",
        "short-block-store",
        "unsupported-lane-count",
        "dropped-skew-sign-flip",
        "swapped-pair-array",
        "kind-flipped-facts-on-lifted-plan",
        "lane-offset-on-skew-plan",
        "merged-adjacent-groups",
        "group-boundary-off-by-one",
        "distance-one-coloring",
    ];
    assert_eq!(KILLED.len(), 16);
    // And the symbolic replay above re-kills the plan-shape subset
    // (mutations 1, 2, 5, 12, 13), while mutations 14–16 are killed by
    // the enumerative *and* symbolic coloring certifiers independently —
    // every mutant whose error originates in plan geometry has two
    // independent killers.
}

/// The mutations map onto *distinct* variants — the discriminants of the
/// errors above are pairwise different.
#[test]
fn mutations_produce_distinct_variants() {
    use std::mem::discriminant;
    let variants = [
        discriminant(&VerifyError::PartitionGap { at: 0 }),
        discriminant(&VerifyError::OverlappingDirectWrites {
            row: 0,
            first: 0,
            second: 0,
        }),
        discriminant(&VerifyError::ColoringConflict {
            color: 0,
            row_a: 0,
            row_b: 0,
            target: 0,
        }),
        discriminant(&VerifyError::StraddlingPattern {
            tid: 0,
            row: 0,
            col: 0,
            split: 0,
        }),
        discriminant(&VerifyError::ReductionSliceOverlap {
            idx: 0,
            first: 0,
            second: 0,
        }),
        discriminant(&VerifyError::StaleCertificate {
            field: "",
            expected: 0,
            actual: 0,
        }),
        discriminant(&VerifyError::LaneOffsetMismatch {
            tid: 0,
            expected: 0,
            actual: 0,
        }),
        discriminant(&VerifyError::LaneRegionMismatch {
            expected: 0,
            actual: 0,
        }),
        discriminant(&VerifyError::BadLaneCount { lanes: 0 }),
        discriminant(&VerifyError::KindSideCondition {
            kind: "",
            reason: String::new(),
        }),
    ];
    for (i, a) in variants.iter().enumerate() {
        for b in variants.iter().skip(i + 1) {
            assert_ne!(a, b);
        }
    }
}
