//! Adversarial cross-validation of the static verifier against the
//! shadow-memory race detector (`--features race-detector`).
//!
//! For each corrupted plan the static layer must *reject the plan before
//! dispatch* and the dynamic layer must *observe the race when the plan is
//! executed anyway* — two independent oracles agreeing on the same defect.
//! A correct plan must satisfy both: certified statically, zero reports
//! dynamically.
#![cfg(feature = "race-detector")]

use std::sync::Arc;
use symspmv_core::symbolic;
use symspmv_runtime::race::{detector_guard, disable, enable, take_reports};
use symspmv_runtime::reduction::{IndexingReduction, ReductionStrategy};
use symspmv_runtime::shared::SharedBuf;
use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights, Range, WorkerPool};
use symspmv_sparse::SssMatrix;
use symspmv_verify::{certify_color, certify_sym, SymPlanRef, SymStrategyKind, VerifyError};

fn matrix(n: u32) -> SssMatrix {
    let coo = symspmv_sparse::gen::banded_random(n, 12, 6.0, 17);
    SssMatrix::from_coo(&coo, 0.0).unwrap()
}

fn certify_parts(sss: &SssMatrix, parts: &[Range]) -> Result<(), VerifyError> {
    let p = parts.len();
    let index = symbolic::analyze(sss, parts);
    let strategy: Arc<dyn ReductionStrategy> = Arc::new(IndexingReduction);
    let layout = strategy.layout(sss.n() as usize, parts);
    let row_chunks = balanced_ranges(&vec![1u64; sss.n() as usize], p);
    certify_sym(
        sss,
        &SymPlanRef {
            parts,
            offsets: &layout.offsets,
            local_len: layout.flat_len,
            strategy: SymStrategyKind::Indexing,
            entries: &index.entries,
            splits: &index.splits,
            row_chunks: &row_chunks,
        },
    )
    .map(|_| ())
}

/// Executes the direct-write phase of a (possibly corrupted) partition:
/// each worker claims its partition's y rows through `range_mut`, exactly
/// as the real kernels do. Returns the detector's reports.
fn run_direct_phase(parts: &[Range], n: usize) -> Vec<symspmv_runtime::race::RaceReport> {
    let mut pool = WorkerPool::new(parts.len());
    let mut y = vec![0.0f64; n];
    let buf = SharedBuf::new(&mut y);
    enable();
    pool.run(&|tid| {
        let part = parts[tid];
        // SAFETY(cert: test-only): deliberately executing an uncertified
        // partition so the shadow layer can observe the overlap; the
        // shadow-map mutex serializes the underlying stores.
        let rows = unsafe { buf.range_mut(part.start as usize, part.end as usize) };
        rows.fill(tid as f64 + 1.0);
    });
    disable();
    take_reports()
}

/// Control: the uncorrupted plan is certified statically and its execution
/// is observed clean dynamically.
#[test]
fn good_plan_passes_both_layers() {
    let _g = detector_guard();
    let sss = matrix(256);
    let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), 4);
    certify_parts(&sss, &parts).expect("correct plan must certify");
    let reports = run_direct_phase(&parts, sss.n() as usize);
    assert!(reports.is_empty(), "clean plan raced: {reports:?}");
}

/// Dynamic mutation 1 — shifted boundary: thread 0's partition runs one
/// row past the split, so the boundary row has two direct writers.
#[test]
fn shifted_boundary_caught_by_both_layers() {
    let _g = detector_guard();
    let sss = matrix(256);
    let mut parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), 4);
    parts[0].end += 1;

    let err = certify_parts(&sss, &parts).unwrap_err();
    assert!(
        matches!(err, VerifyError::OverlappingDirectWrites { .. }),
        "static layer: {err:?}"
    );

    let reports = run_direct_phase(&parts, sss.n() as usize);
    assert!(!reports.is_empty(), "dynamic layer missed the overlap");
    let contested = parts[1].start as usize;
    assert!(
        reports.iter().any(|r| {
            (r.first_tid == 0 && r.second_tid == 1) || (r.first_tid == 1 && r.second_tid == 0)
        }),
        "race must involve the two boundary threads (row {contested}): {reports:?}"
    );
}

/// Dynamic mutation 2 — stolen row: thread 2 reaches back into thread 1's
/// partition, duplicating a row far from its own range.
#[test]
fn stolen_row_caught_by_both_layers() {
    let _g = detector_guard();
    let sss = matrix(256);
    let mut parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), 4);
    parts[2].start -= 3;

    let err = certify_parts(&sss, &parts).unwrap_err();
    assert!(
        matches!(err, VerifyError::OverlappingDirectWrites { .. }),
        "static layer: {err:?}"
    );

    let reports = run_direct_phase(&parts, sss.n() as usize);
    assert!(!reports.is_empty(), "dynamic layer missed the stolen rows");
}

/// Dynamic mutation 3 — wrong color: two rows sharing a write target are
/// forced into one class, then processed by different workers in the same
/// round (the coloring kernel's dispatch shape).
#[test]
fn wrong_color_caught_by_both_layers() {
    let _g = detector_guard();
    let sss = matrix(256);
    let coloring = symspmv_core::sym_color::color_rows(&sss);
    certify_color(&sss, &coloring.classes).expect("greedy coloring must certify");

    // Corrupt: move a row into the class of a row it is coupled to.
    let (victim, neighbor) = (0..sss.n())
        .find_map(|r| sss.row(r).0.first().map(|&c| (r, c)))
        .expect("banded matrix has off-diagonal entries");
    let mut classes = coloring.classes.clone();
    for class in &mut classes {
        class.retain(|&r| r != victim);
    }
    let home = classes
        .iter()
        .position(|c| c.contains(&neighbor))
        .expect("neighbor is colored");
    classes[home].push(victim);
    classes[home].sort_unstable();

    let err = certify_color(&sss, &classes).unwrap_err();
    assert!(
        matches!(err, VerifyError::ColoringConflict { .. }),
        "static layer: {err:?}"
    );

    // Execute the bad class the way the color kernel would: two workers,
    // each owning one of the conflicting rows, writing y[row] and y[col]
    // in the same barrier-delimited round.
    let n = sss.n() as usize;
    let mut pool = WorkerPool::new(2);
    let mut y = vec![0.0f64; n];
    let buf = SharedBuf::new(&mut y);
    let rows = [victim, neighbor];
    enable();
    pool.run(&|tid| {
        let r = rows[tid];
        let (cols, vals) = sss.row(r);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v;
            // SAFETY(cert: test-only): deliberately executing an invalid
            // coloring so the shadow layer can observe the collision; the
            // shadow-map mutex serializes the underlying stores.
            unsafe { buf.add(c as usize, v) };
        }
        // SAFETY(cert: test-only): as above — intentionally racy.
        unsafe { buf.add(r as usize, acc) };
    });
    disable();
    let reports = take_reports();
    assert!(
        !reports.is_empty(),
        "dynamic layer missed the shared target y[{neighbor}]"
    );
}
