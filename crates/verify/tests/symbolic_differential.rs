//! Differential conformance: the symbolic certifier must re-derive every
//! certificate the enumerative checker issues — **bit for bit** after
//! normalizing the proof-form tag — across all nine kernel formats, the
//! three reduction strategies, the three symmetry kinds, every supported
//! lane width and thread counts 1–8. The symbolic path never touches the
//! matrix during certification (structure facts are distilled once, in
//! `O(n + nnz)`), so the same sweep also pins the asymptotic win: on the
//! largest suite matrix the per-plan symbolic proof must be at least 10×
//! faster than the enumerative re-walk.
//!
//! Format → certifier mapping (the nine formats of the roadmap):
//!
//! | formats                              | plan geometry      | certifier pair                     |
//! |--------------------------------------|--------------------|------------------------------------|
//! | `csr`, `csx`, `bcsr`, `csb`, `sym-atomic` | row partition | `certify_rows` / `certify_rows_symbolic` |
//! | `sss`, `csx-sym`, `hybrid`           | symmetric SSS plan | `certify_sym` / `certify_sym_symbolic`   |
//! | `sss-color`                          | stride coloring    | `certify_color` / `certify_color_symbolic` |

use std::sync::Arc;
use std::time::{Duration, Instant};
use symspmv_core::symbolic;
use symspmv_runtime::reduction::{
    EffectiveRangesReduction, IndexingReduction, NaiveReduction, ReductionStrategy,
};
use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights, Range};
use symspmv_sparse::block::SUPPORTED_LANES;
use symspmv_sparse::suite::generate_suite;
use symspmv_sparse::symmetry::SymmetryKind;
use symspmv_sparse::SssMatrix;
use symspmv_verify::{
    certify_color, certify_color_symbolic, certify_rows, certify_rows_symbolic, certify_sym,
    certify_sym_symbolic, lift_sym_certificate, lift_symbolic, stride_classes, ProofForm,
    RaceCertificate, StructureFacts, SymPlanRef, SymStrategyKind,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The five formats whose plan is a plain row partition.
const ROW_FORMATS: [&str; 5] = ["csr", "csx", "bcsr", "csb", "sym-atomic"];

fn strategies() -> Vec<(Arc<dyn ReductionStrategy>, SymStrategyKind)> {
    vec![
        (Arc::new(NaiveReduction), SymStrategyKind::Naive),
        (
            Arc::new(EffectiveRangesReduction),
            SymStrategyKind::EffectiveRanges,
        ),
        (Arc::new(IndexingReduction), SymStrategyKind::Indexing),
    ]
}

/// Proof-form normalization: the two certifiers are required to agree on
/// every field *except* the proof tag (that is the point of the tag).
fn normalized(mut cert: RaceCertificate) -> RaceCertificate {
    cert.proof = ProofForm::Enumerative;
    cert
}

struct SymPlan {
    parts: Vec<Range>,
    offsets: Vec<usize>,
    local_len: usize,
    entries: Vec<symspmv_runtime::reduction::IndexEntry>,
    splits: Vec<usize>,
    conflicts: Vec<Vec<u32>>,
    row_chunks: Vec<Range>,
}

fn sym_plan(sss: &SssMatrix, p: usize, strategy: &Arc<dyn ReductionStrategy>) -> SymPlan {
    let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), p);
    let row_chunks = balanced_ranges(&vec![1u64; sss.n() as usize], p);
    let analysis = symbolic::analyze(sss, &parts);
    let layout = strategy.layout(sss.n() as usize, &parts);
    let (entries, splits) = if strategy.needs_index() {
        (analysis.entries, analysis.splits)
    } else {
        (Vec::new(), vec![0; p + 1])
    };
    SymPlan {
        parts,
        offsets: layout.offsets,
        local_len: layout.flat_len,
        entries,
        splits,
        conflicts: analysis.conflicts,
        row_chunks,
    }
}

fn plan_ref<'a>(plan: &'a SymPlan, kind: SymStrategyKind) -> SymPlanRef<'a> {
    SymPlanRef {
        parts: &plan.parts,
        offsets: &plan.offsets,
        local_len: plan.local_len,
        strategy: kind,
        entries: &plan.entries,
        splits: &plan.splits,
        row_chunks: &plan.row_chunks,
    }
}

/// Differentially certifies one matrix across every strategy, thread
/// count and lane width; returns the number of certificate pairs compared.
fn differential_sym_sweep(sss: &SssMatrix, label: &str) -> usize {
    let facts = StructureFacts::of(sss);
    let mut compared = 0usize;
    for p in THREAD_COUNTS {
        for (strategy, kind) in strategies() {
            let plan = sym_plan(sss, p, &strategy);
            let enumerated = certify_sym(sss, &plan_ref(&plan, kind))
                .unwrap_or_else(|e| panic!("{label} × {kind:?} × p={p}: enumerative rejects: {e}"));
            let symbolic_cert =
                certify_sym_symbolic(&facts, &plan_ref(&plan, kind), &plan.conflicts)
                    .unwrap_or_else(|e| {
                        panic!("{label} × {kind:?} × p={p}: symbolic rejects: {e}")
                    });
            assert_eq!(symbolic_cert.proof, ProofForm::Symbolic);
            assert_eq!(
                normalized(symbolic_cert.clone()),
                normalized(enumerated.clone()),
                "{label} × {kind:?} × p={p}: certificates diverge"
            );
            compared += 1;

            // Lane lifting must agree at every supported width.
            for &lanes in &SUPPORTED_LANES {
                let block_offsets: Vec<usize> = plan.offsets.iter().map(|o| o * lanes).collect();
                let lifted_enum = lift_sym_certificate(
                    &enumerated,
                    lanes,
                    &plan.offsets,
                    plan.local_len,
                    &block_offsets,
                    plan.local_len * lanes,
                )
                .unwrap_or_else(|e| panic!("{label} lanes={lanes}: enumerative lift: {e}"));
                let lifted_sym = lift_symbolic(
                    &symbolic_cert,
                    lanes,
                    &plan.offsets,
                    plan.local_len,
                    &block_offsets,
                    plan.local_len * lanes,
                )
                .unwrap_or_else(|e| panic!("{label} lanes={lanes}: symbolic lift: {e}"));
                assert_eq!(lifted_sym.proof, ProofForm::Symbolic);
                assert_eq!(
                    normalized(lifted_sym),
                    normalized(lifted_enum),
                    "{label} × {kind:?} × p={p} × lanes={lanes}: lifted certificates diverge"
                );
                compared += 1;
            }
        }
    }
    compared
}

/// The whole-suite differential: symmetric suite matrices through the
/// SSS-plan formats (`sss`, `csx-sym`, `hybrid` share the geometry), the
/// row-partition formats, and the stride colorings.
#[test]
fn symbolic_agrees_with_enumerative_across_the_suite() {
    let suite = generate_suite(0.002);
    assert_eq!(suite.len(), 12);
    let mut sym_pairs = 0usize;
    let mut row_pairs = 0usize;
    let mut color_pairs = 0usize;

    for m in &suite {
        let sss = SssMatrix::from_coo(&m.coo, 0.0).unwrap();
        sym_pairs += differential_sym_sweep(&sss, m.spec.name);

        // Row-partition formats: same parts, every family tag.
        let facts = StructureFacts::of(&sss);
        for p in THREAD_COUNTS {
            let parts = balanced_ranges(&vec![1u64; sss.n() as usize], p);
            for family in ROW_FORMATS {
                let enumerated = certify_rows(sss.fingerprint(), sss.n(), &parts, family).unwrap();
                let symbolic_cert =
                    certify_rows_symbolic(sss.fingerprint(), sss.n(), &parts, family).unwrap();
                assert_eq!(symbolic_cert.proof, ProofForm::Symbolic);
                assert_eq!(normalized(symbolic_cert), normalized(enumerated));
                row_pairs += 1;
            }
        }

        // Stride coloring: any stride beyond the bandwidth is barrier-free;
        // the enumerative checker walks every row to prove it, the
        // symbolic one discharges it from the bandwidth fact alone.
        let stride = facts.bandwidth + 1;
        if stride <= facts.n {
            let classes = stride_classes(facts.n, stride);
            let enumerated = certify_color(&sss, &classes)
                .unwrap_or_else(|e| panic!("{}: stride coloring rejected: {e}", m.spec.name));
            let symbolic_cert = certify_color_symbolic(&facts, stride)
                .unwrap_or_else(|e| panic!("{}: symbolic coloring rejected: {e}", m.spec.name));
            assert!(matches!(
                symbolic_cert.proof,
                ProofForm::ColoringDisjoint { .. }
            ));
            assert_eq!(normalized(symbolic_cert), normalized(enumerated));
            color_pairs += 1;
        }
    }

    // Coverage pins: 12 matrices × 4 thread counts × 3 strategies ×
    // (1 scalar + |SUPPORTED_LANES| lifted) pairs, 12 × 4 × 5 row pairs.
    assert_eq!(sym_pairs, 12 * 4 * 3 * (1 + SUPPORTED_LANES.len()));
    assert_eq!(row_pairs, 12 * 4 * 5);
    assert!(
        color_pairs >= 10,
        "almost every suite matrix is banded enough for a stride coloring, got {color_pairs}"
    );
}

/// The skew and structural kinds go through the same differential sweep —
/// the kind side conditions must discharge symbolically from the facts.
#[test]
fn symbolic_agrees_on_skew_and_structural_kinds() {
    let skew = SssMatrix::from_coo_kind(
        &symspmv_sparse::gen::skew_convection(384, 11, 5.0, 7),
        SymmetryKind::Skew,
        0.0,
    )
    .unwrap();
    let compared = differential_sym_sweep(&skew, "skew-convection");
    assert_eq!(compared, 4 * 3 * (1 + SUPPORTED_LANES.len()));

    let structural = SssMatrix::from_coo_kind(
        &symspmv_sparse::gen::structural_random(384, 6.0, 0.7, 10, 23),
        SymmetryKind::Structural,
        0.0,
    )
    .unwrap();
    let compared = differential_sym_sweep(&structural, "structural-random");
    assert_eq!(compared, 4 * 3 * (1 + SUPPORTED_LANES.len()));
}

/// The asymptotic pin: enumerative certification re-walks `O(nnz)` matrix
/// structure per plan; the symbolic proof is `O(p + c)` against
/// pre-distilled facts. On the largest suite matrix the symbolic path
/// must be at least 10× faster — measured as best-of-N to shed scheduler
/// noise.
#[test]
fn symbolic_certification_is_an_order_of_magnitude_faster() {
    let suite = generate_suite(0.002);
    let m = suite.iter().max_by_key(|m| m.coo.nnz()).unwrap();
    let sss = SssMatrix::from_coo(&m.coo, 0.0).unwrap();
    let p = 8;
    let strategy: Arc<dyn ReductionStrategy> = Arc::new(IndexingReduction);
    let plan = sym_plan(&sss, p, &strategy);
    let facts = StructureFacts::of(&sss);

    let best = |reps: usize, mut f: Box<dyn FnMut()>| -> Duration {
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed()
            })
            .min()
            .unwrap_or_default()
    };

    let sss_ref = &sss;
    let plan_r = &plan;
    let facts_ref = &facts;
    let enum_time = best(
        3,
        Box::new(move || {
            certify_sym(sss_ref, &plan_ref(plan_r, SymStrategyKind::Indexing)).unwrap();
        }),
    );
    let sym_time = best(
        10,
        Box::new(move || {
            certify_sym_symbolic(
                facts_ref,
                &plan_ref(plan_r, SymStrategyKind::Indexing),
                &plan_r.conflicts,
            )
            .unwrap();
        }),
    );

    assert!(
        enum_time >= sym_time * 10,
        "symbolic certification must be ≥10× faster on {} ({} lower nnz): enumerative {:?} vs symbolic {:?}",
        m.spec.name,
        sss.lower_nnz(),
        enum_time,
        sym_time
    );
}
