//! Acceptance sweep: the verifier certifies every kernel family ×
//! reduction strategy × thread count over the 12-matrix synthetic suite
//! with zero violations — the construction the paper argues race-free is
//! machine-checked across the whole configuration space.

use std::sync::Arc;
use symspmv_core::csx_sym::CsxSymMatrix;
use symspmv_core::{sym_color, symbolic};
use symspmv_csx::DetectConfig;
use symspmv_runtime::reduction::{
    EffectiveRangesReduction, IndexingReduction, NaiveReduction, ReductionStrategy,
};
use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights, Range};
use symspmv_sparse::suite::generate_suite;
use symspmv_sparse::SssMatrix;
use symspmv_verify::{certify_color, certify_csx_chunks, certify_sym, SymPlanRef, SymStrategyKind};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn strategies() -> Vec<(Arc<dyn ReductionStrategy>, SymStrategyKind)> {
    vec![
        (Arc::new(NaiveReduction), SymStrategyKind::Naive),
        (
            Arc::new(EffectiveRangesReduction),
            SymStrategyKind::EffectiveRanges,
        ),
        (Arc::new(IndexingReduction), SymStrategyKind::Indexing),
    ]
}

#[test]
fn whole_suite_certifies_across_all_configurations() {
    let suite = generate_suite(0.002);
    assert_eq!(suite.len(), 12, "the synthetic suite has 12 matrices");
    let mut certificates = 0usize;

    for m in &suite {
        let sss = SssMatrix::from_coo(&m.coo, 0.0).unwrap();
        let n = sss.n();
        let fingerprint = sss.fingerprint();

        for p in THREAD_COUNTS {
            let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), p);
            let row_chunks = balanced_ranges(&vec![1u64; n as usize], p);

            // sym-sss × {naive, eff, idx}.
            for (strategy, kind) in strategies() {
                let index = if strategy.needs_index() {
                    symbolic::analyze(&sss, &parts)
                } else {
                    symbolic::ConflictIndex {
                        entries: Vec::new(),
                        conflicts: vec![Vec::new(); p],
                        splits: vec![0; p + 1],
                        effective_region_len: parts.iter().map(|r| r.start as usize).sum(),
                    }
                };
                let layout = strategy.layout(n as usize, &parts);
                let cert = certify_sym(
                    &sss,
                    &SymPlanRef {
                        parts: &parts,
                        offsets: &layout.offsets,
                        local_len: layout.flat_len,
                        strategy: kind,
                        entries: &index.entries,
                        splits: &index.splits,
                        row_chunks: &row_chunks,
                    },
                )
                .unwrap_or_else(|e| panic!("{} × {:?} × p={p} rejected: {e}", m.spec.name, kind));
                assert_eq!(cert.nthreads, p);
                assert_eq!(cert.fingerprint, fingerprint);
                certificates += 1;
            }

            // csx-sym: the boundary rule over every chunk stream.
            let csx = CsxSymMatrix::from_sss(
                &sss,
                &parts,
                &DetectConfig {
                    min_coverage: 0.0,
                    ..DetectConfig::default()
                },
            );
            let cert = certify_csx_chunks(
                csx.chunks().iter().map(|c| &c.stream),
                &parts,
                fingerprint,
                n,
                sss.kind(),
            )
            .unwrap_or_else(|e| panic!("{} csx-sym p={p} rejected: {e}", m.spec.name));
            assert!(cert.proves("csx-boundary"));
            certificates += 1;
        }

        // sym-color: partition-independent, once per matrix.
        let coloring = sym_color::color_rows(&sss);
        let cert = certify_color(&sss, &coloring.classes)
            .unwrap_or_else(|e| panic!("{} coloring rejected: {e}", m.spec.name));
        assert!(cert.proves("color-class"));
        certificates += 1;
    }

    // 12 matrices × 4 thread counts × (3 strategies + csx) + 12 colorings.
    assert_eq!(certificates, 12 * 4 * 4 + 12);
}

/// Single-thread plans declare an empty conflict region for the
/// direct-write layouts — the verifier proves there is nothing to reduce.
#[test]
fn single_thread_certificates_have_empty_conflict_regions() {
    for m in generate_suite(0.002).iter().take(3) {
        let sss = SssMatrix::from_coo(&m.coo, 0.0).unwrap();
        let parts = vec![Range {
            start: 0,
            end: sss.n(),
        }];
        let row_chunks = parts.clone();
        let index = symbolic::analyze(&sss, &parts);
        assert!(index.entries.is_empty());
        let strategy: Arc<dyn ReductionStrategy> = Arc::new(IndexingReduction);
        let layout = strategy.layout(sss.n() as usize, &parts);
        let cert = certify_sym(
            &sss,
            &SymPlanRef {
                parts: &parts,
                offsets: &layout.offsets,
                local_len: layout.flat_len,
                strategy: SymStrategyKind::Indexing,
                entries: &index.entries,
                splits: &index.splits,
                row_chunks: &row_chunks,
            },
        )
        .unwrap();
        assert_eq!(cert.local_elems, 0);
        assert_eq!(cert.conflict_entries, 0);
        assert_eq!(cert.density(), 0.0);
    }
}
