//! Integration test for the multi-rule lint engine: the whole tree is
//! clean under every registered rule, and every rule demonstrably *can*
//! fail — each one catches its seeded-violation fixture and passes its
//! known-good twin. Fixtures live in `tests/fixtures/*.rs.txt` (the
//! extension keeps them out of the workspace walk the clean-tree test
//! performs).

use std::path::Path;
use symspmv_verify::rules::{default_rules, run_rules, workspace_rust_files, SourceView};

fn workspace_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR is crates/verify; the workspace root is two up.
    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

#[test]
fn whole_tree_is_clean_under_every_rule() {
    let rules = default_rules();
    assert!(rules.len() >= 4, "the default registry carries all rules");
    let findings = run_rules(&workspace_root(), &rules).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "lint findings on the tree:\n{}",
        findings
            .iter()
            .map(|f| format!(
                "  {}:{}: [{}] {}",
                f.file.display(),
                f.line,
                f.rule,
                f.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The walker regression satellite: the engine's walk must include the
/// root `src/`-less layout pieces the old unsafe audit missed — crate
/// `src/bin` targets and the workspace-level `tests/` directory.
#[test]
fn walker_covers_bin_targets_and_root_tests() {
    let files = workspace_rust_files(&workspace_root()).expect("workspace walk");
    let as_str: Vec<String> = files
        .iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    assert!(
        as_str.iter().any(|p| p.contains("verify/src/bin/audit.rs")),
        "bin targets missing from the walk"
    );
    assert!(
        as_str.iter().any(|p| p.ends_with("tests/lint_unsafe.rs")),
        "workspace-level tests missing from the walk"
    );
    assert!(
        !as_str.iter().any(|p| p.ends_with(".rs.txt")),
        "fixtures must not enter the walk"
    );
}

/// Fixture pairs per rule: (rule name, path the rule applies to,
/// known-good source, seeded-violation source).
fn fixtures() -> Vec<(&'static str, &'static str, &'static str, &'static str)> {
    vec![
        (
            "unsafe-annotation",
            "crates/core/src/sym.rs",
            include_str!("fixtures/unsafe_good.rs.txt"),
            include_str!("fixtures/unsafe_bad.rs.txt"),
        ),
        (
            "checkpoint-coverage",
            "crates/runtime/src/pool.rs",
            include_str!("fixtures/checkpoint_good.rs.txt"),
            include_str!("fixtures/checkpoint_bad.rs.txt"),
        ),
        (
            "lock-order",
            "crates/runtime/src/context.rs",
            include_str!("fixtures/lockorder_good.rs.txt"),
            include_str!("fixtures/lockorder_bad.rs.txt"),
        ),
        (
            "relaxed-ordering",
            "crates/runtime/src/pool.rs",
            include_str!("fixtures/relaxed_good.rs.txt"),
            include_str!("fixtures/relaxed_bad.rs.txt"),
        ),
    ]
}

#[test]
fn every_rule_passes_its_known_good_fixture() {
    let rules = default_rules();
    for (name, path, good, _) in fixtures() {
        let rule = rules
            .iter()
            .find(|r| r.name() == name)
            .unwrap_or_else(|| panic!("rule {name} not registered"));
        let path = Path::new(path);
        assert!(rule.applies_to(path), "{name} must apply to {path:?}");
        let findings = rule.check(path, &SourceView::new(good));
        assert!(
            findings.is_empty(),
            "{name} flagged its known-good fixture: {findings:?}"
        );
    }
}

#[test]
fn every_rule_catches_its_seeded_violation_fixture() {
    let rules = default_rules();
    for (name, path, _, bad) in fixtures() {
        let rule = rules
            .iter()
            .find(|r| r.name() == name)
            .unwrap_or_else(|| panic!("rule {name} not registered"));
        let findings = rule.check(Path::new(path), &SourceView::new(bad));
        assert!(
            !findings.is_empty(),
            "{name} missed its seeded violation — the rule is vacuous"
        );
        for f in &findings {
            assert_eq!(f.rule, name);
            assert!(f.line > 0 && !f.excerpt.is_empty());
        }
    }
}

/// Every registered rule appears in the fixture table — adding a rule
/// without a fixture pair fails here, keeping the "each rule has a
/// fixture-proven catch" guarantee alive.
#[test]
fn every_registered_rule_has_fixtures() {
    let covered: Vec<&str> = fixtures().iter().map(|(n, _, _, _)| *n).collect();
    for rule in default_rules() {
        assert!(
            covered.contains(&rule.name()),
            "rule {} has no fixture pair",
            rule.name()
        );
    }
}
