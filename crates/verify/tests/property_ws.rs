//! Property test: the verifier's footprint statistics agree with the
//! paper's working-set models (`ws.rs`, Eq. 3–6) to *exact integer
//! equality* — the two implementations derive the same quantities through
//! entirely different code paths (symbolic analysis in `symspmv-core`,
//! independent structure re-walk in `symspmv-verify`), so agreement on
//! random partitions is strong evidence both are right.

use std::sync::Arc;
use symspmv_core::{symbolic, ws};
use symspmv_runtime::reduction::{
    EffectiveRangesReduction, IndexingReduction, NaiveReduction, ReductionStrategy,
};
use symspmv_runtime::{balanced_ranges, Range};
use symspmv_sparse::rng::StdRng;
use symspmv_sparse::suite::generate_suite;
use symspmv_sparse::SssMatrix;
use symspmv_verify::{certify_sym, SymPlanRef, SymStrategyKind};

/// A random valid tiling of `0..n` into `p` ranges (possibly with empty
/// trailing parts, like `balanced_ranges` produces for small matrices).
fn random_partition(rng: &mut StdRng, n: u32, p: usize) -> Vec<Range> {
    let mut cuts: Vec<u32> = (0..p - 1).map(|_| rng.random_range(0..n + 1)).collect();
    cuts.sort_unstable();
    let mut parts = Vec::with_capacity(p);
    let mut lo = 0u32;
    for &cut in &cuts {
        parts.push(Range {
            start: lo,
            end: cut,
        });
        lo = cut;
    }
    parts.push(Range { start: lo, end: n });
    parts
}

fn plan_for(
    sss: &SssMatrix,
    parts: &[Range],
    strategy: &dyn ReductionStrategy,
) -> (symbolic::ConflictIndex, Vec<usize>, usize) {
    let nthreads = parts.len();
    let index = if strategy.needs_index() {
        symbolic::analyze(sss, parts)
    } else {
        symbolic::ConflictIndex {
            entries: Vec::new(),
            conflicts: vec![Vec::new(); nthreads],
            splits: vec![0; nthreads + 1],
            effective_region_len: parts.iter().map(|r| r.start as usize).sum(),
        }
    };
    let layout = strategy.layout(sss.n() as usize, parts);
    (index, layout.offsets, layout.flat_len)
}

#[test]
fn verifier_statistics_match_ws_models_exactly() {
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    let naive: Arc<dyn ReductionStrategy> = Arc::new(NaiveReduction);
    let eff: Arc<dyn ReductionStrategy> = Arc::new(EffectiveRangesReduction);
    let idx: Arc<dyn ReductionStrategy> = Arc::new(IndexingReduction);

    for m in generate_suite(0.002) {
        let sss = SssMatrix::from_coo(&m.coo, 0.0).unwrap();
        let n = sss.n();
        for p in [2usize, 3, 5, 8] {
            // One balanced and two random partitions per (matrix, p).
            let mut partitions = vec![balanced_ranges(&vec![1u64; n as usize], p)];
            for _ in 0..2 {
                partitions.push(random_partition(&mut rng, n, p));
            }
            for parts in partitions {
                let row_chunks = balanced_ranges(&vec![1u64; n as usize], p);

                // Indexing: conflict_entries == |index|, local_elems ==
                // effective_region_len, density identical — so Eq. 5/6
                // evaluate identically from either side.
                let (index, offsets, local_len) = plan_for(&sss, &parts, idx.as_ref());
                let cert = certify_sym(
                    &sss,
                    &SymPlanRef {
                        parts: &parts,
                        offsets: &offsets,
                        local_len,
                        strategy: SymStrategyKind::Indexing,
                        entries: &index.entries,
                        splits: &index.splits,
                        row_chunks: &row_chunks,
                    },
                )
                .unwrap_or_else(|e| panic!("{}/p={p}: {e}", m.spec.name));
                assert_eq!(cert.conflict_entries, index.entries.len());
                assert_eq!(cert.local_elems, index.effective_region_len);
                assert_eq!(
                    16 * cert.conflict_entries,
                    ws::ws_indexing(&index),
                    "{}: Eq. 5/6 working set must match",
                    m.spec.name
                );
                assert!((cert.density() - index.density()).abs() == 0.0);

                // Effective ranges: local_elems == Σ start_i == Eq. 4 exact.
                let (index_e, offsets, local_len) = plan_for(&sss, &parts, eff.as_ref());
                let cert = certify_sym(
                    &sss,
                    &SymPlanRef {
                        parts: &parts,
                        offsets: &offsets,
                        local_len,
                        strategy: SymStrategyKind::EffectiveRanges,
                        entries: &[],
                        splits: &[],
                        row_chunks: &row_chunks,
                    },
                )
                .unwrap_or_else(|e| panic!("{}/p={p}: {e}", m.spec.name));
                assert_eq!(
                    ws::ws_effective_exact(cert.local_elems),
                    ws::ws_effective_exact(index_e.effective_region_len),
                    "{}: Eq. 4 exact working set must match",
                    m.spec.name
                );
                assert_eq!(
                    8 * cert.local_elems,
                    ws::ws_effective_exact(cert.local_elems)
                );

                // Naive: local_elems == p·N, so Eq. 3 is 8·local_elems.
                let (_, offsets, local_len) = plan_for(&sss, &parts, naive.as_ref());
                let cert = certify_sym(
                    &sss,
                    &SymPlanRef {
                        parts: &parts,
                        offsets: &offsets,
                        local_len,
                        strategy: SymStrategyKind::Naive,
                        entries: &[],
                        splits: &[],
                        row_chunks: &row_chunks,
                    },
                )
                .unwrap_or_else(|e| panic!("{}/p={p}: {e}", m.spec.name));
                assert_eq!(
                    8 * cert.local_elems,
                    ws::ws_naive(p, n as usize),
                    "{}: Eq. 3 working set must match",
                    m.spec.name
                );
            }
        }
    }
}
