//! A minimal std-only JSON reader/writer for the verification layer.
//!
//! The bench ledger has its own JSON *writer* in the harness; the verify
//! crate needs both directions (certificates round-trip, the audit binary
//! emits findings) without depending on the harness or on serde. The
//! dialect is deliberately strict where floats are concerned: `NaN`,
//! `Infinity` and overflowing literals like `1e999` are rejected on parse,
//! and non-finite numbers are rejected on write — a certificate or finding
//! containing one is corrupt by definition.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (writing a NaN/infinite value is an error).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (order preserved, duplicate
    /// keys rejected on parse).
    Obj(Vec<(String, Json)>),
}

/// Nesting depth cap: deeper documents are rejected rather than risking
/// parser recursion overflow on adversarial input.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Serializes the value compactly. Fails on non-finite numbers.
    pub fn write(&self) -> Result<String, String> {
        let mut out = String::new();
        write_value(self, &mut out)?;
        Ok(out)
    }

    /// Looks up a key of an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match b {
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields: Vec<(String, Json)> = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                if fields.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate key `{key}`"));
                }
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        // `NaN` / `Infinity` land here: not valid JSON, and not a number
        // this dialect will ever accept.
        _ => Err(format!("unexpected byte {b:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8".to_string())?;
    let x: f64 = text
        .parse()
        .map_err(|_| format!("invalid number `{text}`"))?;
    if !x.is_finite() {
        // Overflowing literals (`1e999`) parse to infinity; refuse them.
        return Err(format!("non-finite number `{text}`"));
    }
    Ok(Json::Num(x))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogates and other invalid code points degrade
                        // to the replacement character rather than failing.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape \\{}", esc as char)),
                }
            }
            _ => {
                // Re-borrow the raw utf8 run for multi-byte characters.
                let run_start = *pos - 1;
                let mut end = *pos;
                while end < bytes.len() && bytes[end] != b'"' && bytes[end] != b'\\' {
                    end += 1;
                }
                let run = std::str::from_utf8(&bytes[run_start..end])
                    .map_err(|_| "non-utf8 string".to_string())?;
                out.push_str(run);
                *pos = end;
            }
        }
    }
}

fn write_value(value: &Json, out: &mut String) -> Result<(), String> {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => {
            if !x.is_finite() {
                return Err(format!("cannot serialize non-finite number {x}"));
            }
            if x.fract() == 0.0 && x.abs() < 9.0e15 {
                out.push_str(&format!("{}", *x as i64));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":null},"e":true}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(Json::parse(&v.write().unwrap()).unwrap(), v);
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").and_then(|a| a.get("c")), None);
    }

    #[test]
    fn rejects_non_finite_both_ways() {
        assert!(Json::parse("NaN").is_err());
        assert!(Json::parse("Infinity").is_err());
        assert!(Json::parse("-Infinity").is_err());
        assert!(Json::parse("1e999").is_err(), "overflow to inf");
        assert!(Json::parse("[1, NaN]").is_err());
        assert!(Json::Num(f64::NAN).write().is_err());
        assert!(Json::Num(f64::INFINITY).write().is_err());
        assert!(Json::Arr(vec![Json::Num(f64::NEG_INFINITY)])
            .write()
            .is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}", // duplicate key
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "01x",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn depth_cap_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{0001}".to_string());
        let text = v.write().unwrap();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".to_string())
        );
    }
}
