//! The multi-rule lint engine.
//!
//! [`crate::audit`]'s unsafe-annotation scan generalizes here into a rule
//! registry: each [`LintRule`] is a token-level check over a masked
//! [`SourceView`] of one file, returning [`Finding`]s that name the rule,
//! the file, the line and an excerpt. Like the audit scanner, rules are
//! lexers rather than parsers — they catch the property that matters
//! (a pool-round loop with no checkpoint, an inverted lock pair, an
//! unjustified relaxed atomic) without rustc internals, and every rule
//! ships a known-good and a seeded-violation fixture proving it fires.
//!
//! The walker ([`workspace_rust_files`]) covers the workspace root's
//! `src/`, `tests/`, `benches/` and `examples/`, and each crate's `src/`
//! (including `src/bin` targets), `tests/` and `benches/` — the bin-target
//! gap in the original audit walk is regression-tested.

use crate::audit::{self, mask_source};
use std::path::{Path, PathBuf};

/// One lint finding: a rule firing at a specific line.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Name of the rule that fired.
    pub rule: &'static str,
    /// File containing the violation.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// What the rule demands and did not find.
    pub message: String,
}

impl Finding {
    /// Serializes the finding as a JSON object (rule, file, line, excerpt,
    /// message).
    pub fn to_json(&self) -> crate::jsonio::Json {
        use crate::jsonio::Json;
        Json::Obj(vec![
            ("rule".to_string(), Json::Str(self.rule.to_string())),
            (
                "file".to_string(),
                Json::Str(self.file.display().to_string()),
            ),
            ("line".to_string(), Json::Num(self.line as f64)),
            ("excerpt".to_string(), Json::Str(self.excerpt.clone())),
            ("message".to_string(), Json::Str(self.message.clone())),
        ])
    }
}

/// Masked views of one file, shared by all rules so each file is masked
/// once per run.
#[derive(Debug)]
pub struct SourceView {
    /// Comments kept, strings/chars/block-comments blanked — the view for
    /// finding annotations (`RELAXED(…)`, `SAFETY(…)`).
    pub with_comments: String,
    /// Like `with_comments` but with line comments blanked too — the view
    /// for finding code tokens without doc-example false positives.
    pub code_only: String,
    /// Per line: whether it sits inside a `#[cfg(test)]`-gated item.
    pub test_lines: Vec<bool>,
}

impl SourceView {
    /// Masks `src` into the two views and marks `#[cfg(test)]` regions.
    pub fn new(src: &str) -> Self {
        let with_comments = mask_source(src);
        let code_only: String = with_comments
            .lines()
            .map(|l| match l.find("//") {
                Some(pos) => format!("{}{}\n", &l[..pos], " ".repeat(l.len() - pos)),
                None => format!("{l}\n"),
            })
            .collect();
        let test_lines = mark_test_regions(&code_only);
        SourceView {
            with_comments,
            code_only,
            test_lines,
        }
    }

    fn comment_lines(&self) -> Vec<&str> {
        self.with_comments.lines().collect()
    }

    fn code_lines(&self) -> Vec<&str> {
        self.code_only.lines().collect()
    }

    fn in_test(&self, lineno: usize) -> bool {
        self.test_lines.get(lineno).copied().unwrap_or(false)
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item by matching the
/// braces of the item that follows the attribute. Operates on the
/// code-only view so braces in comments and strings cannot unbalance it.
fn mark_test_regions(code_only: &str) -> Vec<bool> {
    let lines: Vec<&str> = code_only.lines().collect();
    let mut test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            // Find the opening brace of the gated item, then its close.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            'scan: while j < lines.len() {
                for b in lines[j].bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        b';' if !opened && depth == 0 => break 'scan, // braceless item
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            for t in test.iter_mut().take((j + 1).min(lines.len())).skip(i) {
                *t = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    test
}

/// Whether the path is test scaffolding the code-pattern rules exempt:
/// under a `tests`/`benches`/`examples` directory, or a file whose stem is
/// `tests` or ends in `_tests`.
pub fn is_test_path(path: &Path) -> bool {
    let in_test_dir = path.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("examples")
        )
    });
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    in_test_dir || stem == "tests" || stem.ends_with("_tests")
}

/// A token-level lint rule over one file.
pub trait LintRule {
    /// Stable rule name (kebab-case), used in reports and JSON findings.
    fn name(&self) -> &'static str;
    /// One-line description of the property the rule enforces.
    fn description(&self) -> &'static str;
    /// Whether the rule inspects this file at all.
    fn applies_to(&self, path: &Path) -> bool;
    /// Runs the rule over the masked views of one file.
    fn check(&self, path: &Path, view: &SourceView) -> Vec<Finding>;
}

/// Rule 1: every `unsafe` site needs its `SAFETY(cert: …)` /`# Safety`
/// justification — the original audit, adapted to the registry.
pub struct UnsafeAnnotation;

impl LintRule for UnsafeAnnotation {
    fn name(&self) -> &'static str {
        "unsafe-annotation"
    }

    fn description(&self) -> &'static str {
        "every unsafe block/impl names a certificate invariant; every unsafe fn documents # Safety"
    }

    fn applies_to(&self, _path: &Path) -> bool {
        true
    }

    fn check(&self, path: &Path, view: &SourceView) -> Vec<Finding> {
        // audit_source re-masks internally; feed it the raw-equivalent
        // masked view, which is idempotent under masking.
        let lines = view.comment_lines();
        audit::audit_source(path, &view.with_comments)
            .into_iter()
            .filter_map(|site| {
                let violation = site.violation?;
                Some(Finding {
                    rule: self.name(),
                    file: site.file.clone(),
                    line: site.line,
                    excerpt: lines
                        .get(site.line - 1)
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default(),
                    message: violation.to_string(),
                })
            })
            .collect()
    }
}

/// How many lines above a pool-round dispatch the checkpoint may sit.
const CHECKPOINT_WINDOW: usize = 30;

/// Rule 2: every pool-round loop in the runtime must pass a supervision
/// checkpoint before dispatching the round. Token form: a line advancing
/// the round counter (`rounds += 1`) must be preceded, within
/// [`CHECKPOINT_WINDOW`] lines, by a supervision snapshot
/// (`supervision…snapshot()`).
pub struct CheckpointCoverage;

impl LintRule for CheckpointCoverage {
    fn name(&self) -> &'static str {
        "checkpoint-coverage"
    }

    fn description(&self) -> &'static str {
        "every pool-round dispatch is preceded by a supervision checkpoint"
    }

    fn applies_to(&self, path: &Path) -> bool {
        path_in_runtime_src(path) && !is_test_path(path)
    }

    fn check(&self, path: &Path, view: &SourceView) -> Vec<Finding> {
        let lines = view.code_lines();
        let mut findings = Vec::new();
        for (lineno, line) in lines.iter().enumerate() {
            if !line.contains("rounds += 1") || view.in_test(lineno) {
                continue;
            }
            let covered = lines[..lineno]
                .iter()
                .rev()
                .take(CHECKPOINT_WINDOW)
                .any(|back| back.contains("supervision") && back.contains(".snapshot()"));
            if !covered {
                findings.push(Finding {
                    rule: self.name(),
                    file: path.to_path_buf(),
                    line: lineno + 1,
                    excerpt: line.trim().to_string(),
                    message: format!(
                        "pool round advanced without a supervision checkpoint in the {CHECKPOINT_WINDOW} preceding lines"
                    ),
                });
            }
        }
        findings
    }
}

/// How many lines after a health-lock acquisition a pool-lock acquisition
/// counts as nested.
const LOCK_WINDOW: usize = 15;

/// Rule 3: the pool lock is acquired before any health/supervision lock,
/// never inverted — the watchdog takes health locks while a dispatch holds
/// the pool, so the reverse nesting order would deadlock. Token form: a
/// health-lock helper call (`lock_slot(` / `lock_clock(`) must not be
/// followed within [`LOCK_WINDOW`] lines by a pool-lock acquisition.
pub struct LockOrder;

/// Tokens that acquire the pool mutex.
const POOL_LOCK_TOKENS: &[&str] = &[
    "lock_ignore_poison(&self.pool",
    "lock_ignore_poison(&ctx.pool",
    ".pool.lock(",
];

impl LintRule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "pool lock before health lock, never inverted"
    }

    fn applies_to(&self, path: &Path) -> bool {
        path_in_runtime_src(path) && !is_test_path(path)
    }

    fn check(&self, path: &Path, view: &SourceView) -> Vec<Finding> {
        let lines = view.code_lines();
        let mut findings = Vec::new();
        for (lineno, line) in lines.iter().enumerate() {
            let takes_health = (line.contains("lock_slot(") || line.contains("lock_clock("))
                && !line.contains("fn lock_slot")
                && !line.contains("fn lock_clock");
            if !takes_health || view.in_test(lineno) {
                continue;
            }
            for (ahead, after) in lines.iter().enumerate().skip(lineno + 1).take(LOCK_WINDOW) {
                if POOL_LOCK_TOKENS.iter().any(|t| after.contains(t)) {
                    findings.push(Finding {
                        rule: self.name(),
                        file: path.to_path_buf(),
                        line: ahead + 1,
                        excerpt: after.trim().to_string(),
                        message: format!(
                            "pool lock taken {} lines after a health lock (line {}): inverted order",
                            ahead - lineno,
                            lineno + 1
                        ),
                    });
                    break;
                }
            }
        }
        findings
    }
}

/// How many lines above a relaxed atomic the annotation may sit.
const RELAXED_WINDOW: usize = 4;

/// Rule 4: every `Ordering::Relaxed` in library code carries a
/// `RELAXED(reason)` comment on the same line or within
/// [`RELAXED_WINDOW`] lines above, stating why the weakest ordering is
/// sufficient at that site.
pub struct RelaxedOrdering;

impl LintRule for RelaxedOrdering {
    fn name(&self) -> &'static str {
        "relaxed-ordering"
    }

    fn description(&self) -> &'static str {
        "every Ordering::Relaxed carries a RELAXED(reason) annotation"
    }

    fn applies_to(&self, path: &Path) -> bool {
        !is_test_path(path)
    }

    fn check(&self, path: &Path, view: &SourceView) -> Vec<Finding> {
        let code = view.code_lines();
        let comments = view.comment_lines();
        let mut findings = Vec::new();
        for (lineno, line) in code.iter().enumerate() {
            if !line.contains("Ordering::Relaxed") || view.in_test(lineno) {
                continue;
            }
            let lo = lineno.saturating_sub(RELAXED_WINDOW);
            let annotated = comments[lo..=lineno.min(comments.len() - 1)]
                .iter()
                .any(|l| l.contains("RELAXED("));
            if !annotated {
                findings.push(Finding {
                    rule: self.name(),
                    file: path.to_path_buf(),
                    line: lineno + 1,
                    excerpt: line.trim().to_string(),
                    message: "Ordering::Relaxed without a RELAXED(reason) annotation".to_string(),
                });
            }
        }
        findings
    }
}

fn path_in_runtime_src(path: &Path) -> bool {
    let s = path.to_string_lossy().replace('\\', "/");
    s.contains("runtime/src/")
}

/// The rule registry every caller (binary, CI test) runs.
pub fn default_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(UnsafeAnnotation),
        Box::new(CheckpointCoverage),
        Box::new(LockOrder),
        Box::new(RelaxedOrdering),
    ]
}

/// Every `.rs` file the lint engine covers: the workspace root's `src/`,
/// `tests/`, `benches/`, `examples/`, and each crate's `src/` (recursive,
/// so `src/bin` targets are included), `tests/` and `benches/`.
pub fn workspace_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots: Vec<PathBuf> = ["src", "tests", "benches", "examples"]
        .iter()
        .map(|d| root.join(d))
        .collect();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for krate in entries {
            for d in ["src", "tests", "benches"] {
                roots.push(krate.join(d));
            }
        }
    }
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = roots.into_iter().filter(|p| p.is_dir()).collect();
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the rules over every workspace file and returns all findings,
/// sorted by (file, line, rule).
pub fn run_rules(root: &Path, rules: &[Box<dyn LintRule>]) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in workspace_rust_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        let view = SourceView::new(&src);
        for rule in rules {
            if rule.applies_to(&path) {
                findings.extend(rule.check(&path, &view));
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rule: &dyn LintRule, path: &str, src: &str) -> Vec<Finding> {
        rule.check(Path::new(path), &SourceView::new(src))
    }

    #[test]
    fn relaxed_needs_annotation() {
        let rule = RelaxedOrdering;
        let bad = check(
            &rule,
            "crates/runtime/src/pool.rs",
            "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "relaxed-ordering");

        let good = check(
            &rule,
            "crates/runtime/src/pool.rs",
            "// RELAXED(counter is advisory telemetry, no ordering needed)\n\
             fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn relaxed_in_doc_comment_or_test_mod_exempt() {
        let rule = RelaxedOrdering;
        let doc = check(
            &rule,
            "crates/runtime/src/pool.rs",
            "/// Example: `a.load(Ordering::Relaxed)` is fine here.\nfn f() {}\n",
        );
        assert!(doc.is_empty(), "{doc:?}");
        let test_mod = check(
            &rule,
            "crates/runtime/src/pool.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::*;\n    fn g(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n}\n",
        );
        assert!(test_mod.is_empty(), "{test_mod:?}");
        assert!(!rule.applies_to(Path::new("crates/runtime/src/stress_tests.rs")));
        assert!(!rule.applies_to(Path::new("crates/core/tests/oracle.rs")));
    }

    #[test]
    fn checkpoint_coverage_window() {
        let rule = CheckpointCoverage;
        assert!(rule.applies_to(Path::new("crates/runtime/src/pool.rs")));
        assert!(!rule.applies_to(Path::new("crates/core/src/plan.rs")));
        let bad = check(
            &rule,
            "crates/runtime/src/pool.rs",
            "fn dispatch(&mut self) {\n    self.rounds += 1;\n}\n",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        let good = check(
            &rule,
            "crates/runtime/src/pool.rs",
            "fn dispatch(&mut self) {\n    let sup = self.supervision.snapshot();\n    sup.check();\n    self.rounds += 1;\n}\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn lock_order_inversion_detected() {
        let rule = LockOrder;
        let bad = check(
            &rule,
            "crates/runtime/src/context.rs",
            "fn f(&self) {\n    let h = self.health.lock_clock();\n    let p = lock_ignore_poison(&self.pool);\n    drop((h, p));\n}\n",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "lock-order");
        let good = check(
            &rule,
            "crates/runtime/src/context.rs",
            "fn f(&self) {\n    let p = lock_ignore_poison(&self.pool);\n    let h = self.health.lock_clock();\n    drop((h, p));\n}\n",
        );
        assert!(good.is_empty(), "{good:?}");
        // The helper definitions themselves are not acquisitions.
        let defs = check(
            &rule,
            "crates/runtime/src/supervisor.rs",
            "impl H {\n    fn lock_clock(&self) -> G {\n        lock_ignore_poison(&self.clock)\n    }\n}\n",
        );
        assert!(defs.is_empty(), "{defs:?}");
    }

    #[test]
    fn unsafe_rule_reports_via_registry() {
        let rule = UnsafeAnnotation;
        let bad = check(
            &rule,
            "crates/core/src/x.rs",
            "fn f(p: *mut f64) { unsafe { *p = 1.0; } }\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "unsafe-annotation");
        assert_eq!(bad[0].line, 1);
    }

    #[test]
    fn test_region_marking_matches_braces() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let view = SourceView::new(src);
        assert_eq!(view.test_lines, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn findings_serialize_to_json() {
        let f = Finding {
            rule: "relaxed-ordering",
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 7,
            excerpt: "a.load(Ordering::Relaxed);".to_string(),
            message: "needs RELAXED(reason)".to_string(),
        };
        let text = f.to_json().write().unwrap();
        assert!(text.contains("\"rule\":\"relaxed-ordering\""));
        assert!(text.contains("\"line\":7"));
    }
}
