//! The serializable proof object emitted by the write-set verifier.
//!
//! A [`RaceCertificate`] records *what was proved about which
//! configuration*: the structural fingerprint of the matrix, the thread
//! count and strategy the plan was computed for, the invariants that were
//! established, and the footprint statistics (direct rows, effective-region
//! elements, conflict entries) the proofs rest on. `ExecutionContext`
//! memoizes certificates next to the plans they certify, and kernels assert
//! [`RaceCertificate::validate_for`] in debug builds before dispatch — a
//! certificate reused after renumbering, or across a thread-count or
//! strategy switch, is rejected as [`VerifyError::StaleCertificate`].
//!
//! The text format is a simple `key=value` line protocol (std-only, no
//! serde): stable field order on write, order-insensitive on read.

use crate::error::VerifyError;
use crate::jsonio::Json;

/// How a certificate's obligations were discharged.
///
/// The *claims* of a certificate are identical across proof forms — the
/// differential suite pins the symbolic certifier bit-for-bit against the
/// enumerative one — but the form records which argument was run, so a
/// cached certificate can say whether re-validation costs `O(nnz)` or
/// `O(p)`, and so coloring certificates can carry the symbolic spacing
/// theorem their scheduler needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProofForm {
    /// Exhaustive write-set enumeration (`crate::writeset`), `O(nnz)`.
    #[default]
    Enumerative,
    /// Interval/congruence abstract interpretation (`crate::symbolic`),
    /// `O(p + c)`.
    Symbolic,
    /// The cyclic-coloring spacing theorem: same-class rows are `stride`
    /// apart and every write window reaches at most `reach` rows back, so
    /// `stride > reach` proves each class barrier-free.
    ColoringDisjoint {
        /// The coloring stride (number of color classes).
        stride: u32,
        /// The matrix bandwidth the spacing argument was checked against.
        reach: u32,
    },
}

impl ProofForm {
    /// The serialization tag (`enumerative`, `symbolic`,
    /// `coloring-disjoint:<stride>:<reach>`).
    pub fn tag(&self) -> String {
        match self {
            ProofForm::Enumerative => "enumerative".to_string(),
            ProofForm::Symbolic => "symbolic".to_string(),
            ProofForm::ColoringDisjoint { stride, reach } => {
                format!("coloring-disjoint:{stride}:{reach}")
            }
        }
    }

    /// Parses a serialization tag; unknown tags are rejected.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "enumerative" => Some(ProofForm::Enumerative),
            "symbolic" => Some(ProofForm::Symbolic),
            _ => {
                let rest = tag.strip_prefix("coloring-disjoint:")?;
                let (stride, reach) = rest.split_once(':')?;
                Some(ProofForm::ColoringDisjoint {
                    stride: stride.parse().ok()?,
                    reach: reach.parse().ok()?,
                })
            }
        }
    }
}

/// A machine-checked proof that one (matrix, nthreads, strategy) plan is
/// free of write-write races.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceCertificate {
    /// Structural fingerprint of the matrix the plan was verified against.
    pub fingerprint: u64,
    /// Matrix dimension.
    pub n: usize,
    /// Thread count the plan partitions for.
    pub nthreads: usize,
    /// Kernel family (`"sym-sss"`, `"sym-color"`, `"csx-sym"`, `"rows"`…).
    pub family: String,
    /// Reduction strategy tag (`"naive"`, `"eff"`, `"idx"`; empty when the
    /// family has no strategy dimension).
    pub strategy: String,
    /// Symmetry-kind tag of the mirror writes the proof covers
    /// (`"symmetric"`, `"skew"`, `"structural"`; `"none"` for row-parallel
    /// kernels without transposed writes). The write sets themselves are
    /// kind-independent — the kind enters only through side conditions
    /// (zero diagonal for skew, paired upper array for structural).
    pub symmetry: String,
    /// Names of the certificate invariants established by the verifier —
    /// the same names `SAFETY(cert: …)` annotations reference.
    pub invariants: Vec<String>,
    /// Rows covered by direct (in-partition) writes.
    pub direct_rows: usize,
    /// Total elements of the declared local/effective regions, `Σ start_i`
    /// for the effective layouts (the working-set term of Eqs. 3–6).
    pub local_elems: usize,
    /// Distinct conflicting entries across all threads (the `(vid, idx)`
    /// index size for the indexing strategy).
    pub conflict_entries: usize,
    /// Right-hand-side lanes the certified write sets cover: `1` for a
    /// scalar SpMV plan; `k` for a block (SpMM) plan lane-lifted from a
    /// scalar proof (see `lift_sym_certificate`). Footprint statistics
    /// (`local_elems`, `conflict_entries`) are in lane-scaled elements.
    pub lanes: usize,
    /// How the obligations were discharged (enumeration, abstract
    /// interpretation, or the coloring spacing theorem).
    pub proof: ProofForm,
}

impl RaceCertificate {
    /// Effective-region density `d` (Fig. 4): conflicting entries over
    /// total effective-region length. Matches
    /// `ConflictIndex::density` exactly — both are the same integer ratio.
    pub fn density(&self) -> f64 {
        if self.local_elems == 0 {
            0.0
        } else {
            self.conflict_entries as f64 / self.local_elems as f64
        }
    }

    /// Whether the certificate names `invariant` among its proofs.
    pub fn proves(&self, invariant: &str) -> bool {
        self.invariants.iter().any(|i| i == invariant)
    }

    /// Checks that this certificate describes exactly the configuration
    /// about to be dispatched.
    pub fn validate_for(
        &self,
        fingerprint: u64,
        nthreads: usize,
        family: &str,
        strategy: &str,
    ) -> Result<(), VerifyError> {
        if self.fingerprint != fingerprint {
            return Err(VerifyError::StaleCertificate {
                field: "fingerprint",
                expected: self.fingerprint,
                actual: fingerprint,
            });
        }
        if self.nthreads != nthreads {
            return Err(VerifyError::StaleCertificate {
                field: "nthreads",
                expected: self.nthreads as u64,
                actual: nthreads as u64,
            });
        }
        if self.family != family {
            return Err(VerifyError::StaleCertificate {
                field: "family",
                expected: str_tag(&self.family),
                actual: str_tag(family),
            });
        }
        if self.strategy != strategy {
            return Err(VerifyError::StaleCertificate {
                field: "strategy",
                expected: str_tag(&self.strategy),
                actual: str_tag(strategy),
            });
        }
        Ok(())
    }

    /// Serializes to the `key=value` text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("certificate=race-v1\n");
        s.push_str(&format!("fingerprint={:#018x}\n", self.fingerprint));
        s.push_str(&format!("n={}\n", self.n));
        s.push_str(&format!("nthreads={}\n", self.nthreads));
        s.push_str(&format!("family={}\n", self.family));
        s.push_str(&format!("strategy={}\n", self.strategy));
        s.push_str(&format!("symmetry={}\n", self.symmetry));
        s.push_str(&format!("invariants={}\n", self.invariants.join(",")));
        s.push_str(&format!("direct_rows={}\n", self.direct_rows));
        s.push_str(&format!("local_elems={}\n", self.local_elems));
        s.push_str(&format!("conflict_entries={}\n", self.conflict_entries));
        s.push_str(&format!("lanes={}\n", self.lanes));
        s.push_str(&format!("proof={}\n", self.proof.tag()));
        s
    }

    /// Parses the text format produced by [`RaceCertificate::to_text`].
    pub fn from_text(text: &str) -> Result<Self, VerifyError> {
        let mut cert = RaceCertificate {
            fingerprint: 0,
            n: 0,
            nthreads: 0,
            family: String::new(),
            strategy: String::new(),
            // Texts minted before the symmetry-kind era carry no
            // `symmetry` key; they certified numerically symmetric plans.
            symmetry: "symmetric".to_string(),
            invariants: Vec::new(),
            direct_rows: 0,
            local_elems: 0,
            conflict_entries: 0,
            // Texts minted before the batched-SpMM era carry no `lanes`
            // key; they certified scalar plans.
            lanes: 1,
            // Texts minted before the symbolic-certifier era carry no
            // `proof` key; they were proved by enumeration.
            proof: ProofForm::Enumerative,
        };
        let mut header_seen = false;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| malformed(lineno, line))?;
            match key {
                "certificate" => {
                    if value != "race-v1" {
                        return Err(malformed(lineno, line));
                    }
                    header_seen = true;
                }
                "fingerprint" => {
                    let hex = value.trim_start_matches("0x");
                    cert.fingerprint =
                        u64::from_str_radix(hex, 16).map_err(|_| malformed(lineno, line))?;
                }
                "n" => cert.n = parse_usize(value, lineno, line)?,
                "nthreads" => cert.nthreads = parse_usize(value, lineno, line)?,
                "family" => cert.family = value.to_string(),
                "strategy" => cert.strategy = value.to_string(),
                "symmetry" => cert.symmetry = value.to_string(),
                "invariants" => {
                    cert.invariants = value
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                }
                "direct_rows" => cert.direct_rows = parse_usize(value, lineno, line)?,
                "local_elems" => cert.local_elems = parse_usize(value, lineno, line)?,
                "conflict_entries" => cert.conflict_entries = parse_usize(value, lineno, line)?,
                "lanes" => cert.lanes = parse_usize(value, lineno, line)?,
                "proof" => {
                    cert.proof =
                        ProofForm::from_tag(value).ok_or_else(|| malformed(lineno, line))?;
                }
                _ => return Err(malformed(lineno, line)),
            }
        }
        if !header_seen {
            return Err(VerifyError::MalformedPlan {
                reason: "certificate text missing `certificate=race-v1` header".to_string(),
            });
        }
        Ok(cert)
    }

    /// Serializes to JSON (schema `race-v1`): every text-format field plus
    /// the derived `density`, which [`RaceCertificate::from_json`]
    /// cross-validates on read. Fingerprints are hex strings (JSON numbers
    /// lose 64-bit integer precision); the proof form is its tag.
    pub fn to_json(&self) -> Result<String, VerifyError> {
        let obj = Json::Obj(vec![
            ("certificate".to_string(), Json::Str("race-v1".to_string())),
            (
                "fingerprint".to_string(),
                Json::Str(format!("{:#018x}", self.fingerprint)),
            ),
            ("n".to_string(), Json::Num(self.n as f64)),
            ("nthreads".to_string(), Json::Num(self.nthreads as f64)),
            ("family".to_string(), Json::Str(self.family.clone())),
            ("strategy".to_string(), Json::Str(self.strategy.clone())),
            ("symmetry".to_string(), Json::Str(self.symmetry.clone())),
            (
                "invariants".to_string(),
                Json::Arr(
                    self.invariants
                        .iter()
                        .map(|i| Json::Str(i.clone()))
                        .collect(),
                ),
            ),
            (
                "direct_rows".to_string(),
                Json::Num(self.direct_rows as f64),
            ),
            (
                "local_elems".to_string(),
                Json::Num(self.local_elems as f64),
            ),
            (
                "conflict_entries".to_string(),
                Json::Num(self.conflict_entries as f64),
            ),
            ("lanes".to_string(), Json::Num(self.lanes as f64)),
            ("proof".to_string(), Json::Str(self.proof.tag())),
            ("density".to_string(), Json::Num(self.density())),
        ]);
        obj.write().map_err(|reason| VerifyError::MalformedPlan {
            reason: format!("certificate JSON write: {reason}"),
        })
    }

    /// Parses the JSON produced by [`RaceCertificate::to_json`]. Rejects
    /// unknown keys, unknown proof tags, non-integral counts, NaN/infinite
    /// numbers (the parser refuses them token-level) and a `density` that
    /// disagrees with the recomputed ratio.
    pub fn from_json(text: &str) -> Result<Self, VerifyError> {
        let json = Json::parse(text).map_err(|reason| VerifyError::MalformedPlan {
            reason: format!("certificate JSON: {reason}"),
        })?;
        let Json::Obj(fields) = json else {
            return Err(VerifyError::MalformedPlan {
                reason: "certificate JSON is not an object".to_string(),
            });
        };
        let bad = |key: &str, why: &str| VerifyError::MalformedPlan {
            reason: format!("certificate JSON key `{key}`: {why}"),
        };
        let as_count = |key: &str, v: &Json| -> Result<usize, VerifyError> {
            match v {
                Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                    Ok(*x as usize)
                }
                _ => Err(bad(key, "expected a non-negative integer")),
            }
        };
        let as_str = |key: &str, v: &Json| -> Result<String, VerifyError> {
            match v {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(bad(key, "expected a string")),
            }
        };
        let mut cert = RaceCertificate {
            fingerprint: 0,
            n: 0,
            nthreads: 0,
            family: String::new(),
            strategy: String::new(),
            symmetry: "symmetric".to_string(),
            invariants: Vec::new(),
            direct_rows: 0,
            local_elems: 0,
            conflict_entries: 0,
            lanes: 1,
            proof: ProofForm::Enumerative,
        };
        let mut header_seen = false;
        let mut declared_density: Option<f64> = None;
        for (key, value) in &fields {
            match key.as_str() {
                "certificate" => {
                    if as_str(key, value)? != "race-v1" {
                        return Err(bad(key, "unknown schema version"));
                    }
                    header_seen = true;
                }
                "fingerprint" => {
                    let hex = as_str(key, value)?;
                    let hex = hex.trim_start_matches("0x");
                    cert.fingerprint = u64::from_str_radix(hex, 16)
                        .map_err(|_| bad(key, "expected a hex string"))?;
                }
                "n" => cert.n = as_count(key, value)?,
                "nthreads" => cert.nthreads = as_count(key, value)?,
                "family" => cert.family = as_str(key, value)?,
                "strategy" => cert.strategy = as_str(key, value)?,
                "symmetry" => cert.symmetry = as_str(key, value)?,
                "invariants" => {
                    let Json::Arr(items) = value else {
                        return Err(bad(key, "expected an array"));
                    };
                    cert.invariants = items
                        .iter()
                        .map(|i| as_str(key, i))
                        .collect::<Result<_, _>>()?;
                }
                "direct_rows" => cert.direct_rows = as_count(key, value)?,
                "local_elems" => cert.local_elems = as_count(key, value)?,
                "conflict_entries" => cert.conflict_entries = as_count(key, value)?,
                "lanes" => cert.lanes = as_count(key, value)?,
                "proof" => {
                    let tag = as_str(key, value)?;
                    cert.proof =
                        ProofForm::from_tag(&tag).ok_or_else(|| bad(key, "unknown proof tag"))?;
                }
                "density" => match value {
                    Json::Num(x) => declared_density = Some(*x),
                    _ => return Err(bad(key, "expected a number")),
                },
                _ => return Err(bad(key, "unknown key")),
            }
        }
        if !header_seen {
            return Err(VerifyError::MalformedPlan {
                reason: "certificate JSON missing `certificate: race-v1`".to_string(),
            });
        }
        if let Some(d) = declared_density {
            if (d - cert.density()).abs() > 1e-12 {
                return Err(VerifyError::MalformedPlan {
                    reason: format!(
                        "certificate JSON density {d} disagrees with recomputed {}",
                        cert.density()
                    ),
                });
            }
        }
        Ok(cert)
    }
}

/// A short stable tag of a string for [`VerifyError::StaleCertificate`]'s
/// numeric expected/actual slots (FNV-1a, like the matrix fingerprint).
fn str_tag(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_usize(value: &str, lineno: usize, line: &str) -> Result<usize, VerifyError> {
    value.parse().map_err(|_| malformed(lineno, line))
}

fn malformed(lineno: usize, line: &str) -> VerifyError {
    VerifyError::MalformedPlan {
        reason: format!("certificate text line {}: `{line}`", lineno + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RaceCertificate {
        RaceCertificate {
            fingerprint: 0xdead_beef_1234_5678,
            n: 1024,
            nthreads: 4,
            family: "sym-sss".to_string(),
            strategy: "idx".to_string(),
            symmetry: "symmetric".to_string(),
            invariants: vec![
                "disjoint-direct".to_string(),
                "effective-region".to_string(),
                "reduction-slice".to_string(),
            ],
            direct_rows: 1024,
            local_elems: 1536,
            conflict_entries: 96,
            lanes: 1,
            proof: ProofForm::Symbolic,
        }
    }

    #[test]
    fn text_round_trip() {
        let cert = sample();
        let parsed = RaceCertificate::from_text(&cert.to_text()).unwrap();
        assert_eq!(parsed, cert);
        assert!(parsed.proves("disjoint-direct"));
        assert!(!parsed.proves("color-class"));
        assert!((parsed.density() - 96.0 / 1536.0).abs() == 0.0);
    }

    #[test]
    fn validate_rejects_every_mismatch_dimension() {
        let cert = sample();
        assert!(cert
            .validate_for(cert.fingerprint, 4, "sym-sss", "idx")
            .is_ok());
        assert!(matches!(
            cert.validate_for(1, 4, "sym-sss", "idx"),
            Err(VerifyError::StaleCertificate {
                field: "fingerprint",
                ..
            })
        ));
        assert!(matches!(
            cert.validate_for(cert.fingerprint, 8, "sym-sss", "idx"),
            Err(VerifyError::StaleCertificate {
                field: "nthreads",
                ..
            })
        ));
        assert!(matches!(
            cert.validate_for(cert.fingerprint, 4, "sym-color", "idx"),
            Err(VerifyError::StaleCertificate {
                field: "family",
                ..
            })
        ));
        assert!(matches!(
            cert.validate_for(cert.fingerprint, 4, "sym-sss", "eff"),
            Err(VerifyError::StaleCertificate {
                field: "strategy",
                ..
            })
        ));
    }

    #[test]
    fn malformed_texts_rejected() {
        for bad in [
            "",
            "fingerprint=0x10\nn=4\n",               // missing header
            "certificate=race-v2\n",                 // wrong version
            "certificate=race-v1\nn=notanumber\n",   // bad number
            "certificate=race-v1\nunknown_key=1\n",  // unknown key
            "certificate=race-v1\nno equals sign\n", // not key=value
        ] {
            assert!(
                matches!(
                    RaceCertificate::from_text(bad),
                    Err(VerifyError::MalformedPlan { .. })
                ),
                "{bad:?} must be rejected"
            );
        }
    }
}
