//! CSX-Sym boundary-rule certification (§IV-B).
//!
//! CSX-Sym encodes each thread's chunk of the strict lower triangle as one
//! ctl stream; a substructure unit is executed as a single uninterruptible
//! run whose transposed writes all go through the *same* pointer — the
//! thread's private local vector when the target column is left of the
//! chunk's split, the shared `y` when it is right of it. A pattern whose
//! elements fall on *both* sides would need to switch pointers mid-unit,
//! which the kernel does not do: the encoder must break such runs into
//! delta units. The checker walks every stream and proves no encoded
//! pattern straddles its chunk's local-vs-direct boundary, and that every
//! write target stays inside the chunk's declared footprint.

use crate::certificate::{ProofForm, RaceCertificate};
use crate::error::VerifyError;
use symspmv_csx::encode::CtlStream;
use symspmv_runtime::Range;
use symspmv_sparse::symmetry::SymmetryKind;

/// Verifies one chunk's stream against its row partition.
///
/// `part.start` doubles as the chunk's local/direct column split, exactly
/// as `CsxSymMatrix::from_sss` configures the detector.
pub fn certify_csx_chunk(stream: &CtlStream, part: Range, tid: usize) -> Result<(), VerifyError> {
    let split = part.start;
    // Re-associate elements with their units by walking both callbacks and
    // counting off each unit's `size` elements.
    let mut units: Vec<(bool, u32, u32, u32)> = Vec::new(); // (is_pattern, size, row, col)
    let mut elems: Vec<(u32, u32)> = Vec::new();
    stream.walk(
        |u| units.push((u.kind.is_some(), u.size, u.row, u.col)),
        |r, c, _| elems.push((r, c)),
    );
    let mut off = 0usize;
    for &(is_pattern, size, urow, ucol) in &units {
        let my = &elems[off..off + size as usize];
        off += size as usize;
        let mut any_local = false;
        let mut any_direct = false;
        for &(r, c) in my {
            if r < part.start || r >= part.end {
                return Err(VerifyError::EscapedWrite { tid, target: r });
            }
            // Transposed write target: the strict-lower column.
            if c < split {
                any_local = true;
            } else {
                any_direct = true;
                if c >= part.end {
                    return Err(VerifyError::EscapedWrite { tid, target: c });
                }
            }
        }
        if is_pattern && any_local && any_direct {
            return Err(VerifyError::StraddlingPattern {
                tid,
                row: urow,
                col: ucol,
                split,
            });
        }
    }
    Ok(())
}

/// Certifies every chunk of a CSX-Sym encoding: row partitions must tile
/// `0..n` (checked by the caller via [`crate::certify_sym`] on the same
/// partition) and no chunk's stream may violate the boundary rule.
pub fn certify_csx_chunks<'a>(
    streams: impl IntoIterator<Item = &'a CtlStream>,
    parts: &[Range],
    fingerprint: u64,
    n: u32,
    kind: SymmetryKind,
) -> Result<RaceCertificate, VerifyError> {
    let mut count = 0usize;
    for (tid, stream) in streams.into_iter().enumerate() {
        let part = *parts.get(tid).ok_or_else(|| VerifyError::MalformedPlan {
            reason: format!("{} streams but only {} partitions", tid + 1, parts.len()),
        })?;
        certify_csx_chunk(stream, part, tid)?;
        count += 1;
    }
    if count != parts.len() {
        return Err(VerifyError::MalformedPlan {
            reason: format!("{count} streams for {} partitions", parts.len()),
        });
    }
    Ok(RaceCertificate {
        fingerprint,
        n: n as usize,
        nthreads: parts.len(),
        family: "csx-sym".to_string(),
        strategy: String::new(),
        symmetry: kind.tag().to_string(),
        invariants: vec!["csx-boundary".to_string(), "disjoint-direct".to_string()],
        direct_rows: n as usize,
        local_elems: parts.iter().map(|r| r.start as usize).sum(),
        conflict_entries: 0,
        lanes: 1,
        proof: ProofForm::Enumerative,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_csx::encode::encode_coo;
    use symspmv_csx::DetectConfig;
    use symspmv_sparse::CooMatrix;

    fn horizontal_run(row: u32, cols: std::ops::Range<u32>) -> CooMatrix {
        let mut coo = CooMatrix::new(16, 16);
        for c in cols {
            coo.push(row, c, 1.0);
        }
        coo
    }

    #[test]
    fn pattern_across_split_is_straddling() {
        // A horizontal run in row 8 spanning columns 2..7; with the chunk
        // split at 4 the run's transposed writes land on both sides.
        let coo = horizontal_run(8, 2..7);
        let cfg = DetectConfig {
            col_split: None, // encoder unaware of the boundary → illegal unit
            ..DetectConfig::default()
        };
        let stream = encode_coo(&coo, &cfg);
        let part = Range { start: 4, end: 16 };
        let err = certify_csx_chunk(&stream, part, 1).unwrap_err();
        assert!(
            matches!(err, VerifyError::StraddlingPattern { split: 4, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn split_aware_encoding_is_legal() {
        let coo = horizontal_run(8, 2..7);
        let cfg = DetectConfig {
            col_split: Some(4), // encoder breaks the run at the boundary
            ..DetectConfig::default()
        };
        let stream = encode_coo(&coo, &cfg);
        certify_csx_chunk(&stream, Range { start: 4, end: 16 }, 1).unwrap();
    }

    #[test]
    fn rows_outside_partition_escape() {
        let coo = horizontal_run(2, 0..2);
        let stream = encode_coo(&coo, &DetectConfig::default());
        let err = certify_csx_chunk(&stream, Range { start: 4, end: 16 }, 0).unwrap_err();
        assert_eq!(err, VerifyError::EscapedWrite { tid: 0, target: 2 });
    }
}
