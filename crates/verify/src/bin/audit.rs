//! Workspace static-analysis binary: `cargo run -p symspmv-verify --bin audit`.
//!
//! Usage: `audit [ROOT] [--json FILE] [--markdown FILE]`
//!
//! Two passes over every `.rs` file reachable from the workspace root:
//!
//! 1. the **unsafe inventory** — prints each `unsafe` site with its
//!    certificate invariant (the human report the binary has always
//!    produced);
//! 2. the **lint rule engine** ([`symspmv_verify::rules`]) — every
//!    registered rule (unsafe annotation, checkpoint coverage, lock
//!    order, atomic-ordering audit) over the workspace walk that also
//!    covers `src/` and `crates/*/src/bin` targets.
//!
//! `--json FILE` additionally writes the findings as a machine-readable
//! JSON document (rule, file, line, excerpt, message per finding);
//! `--markdown FILE` writes a findings table suitable for a CI job
//! summary. The exit code is non-zero iff any rule produced a finding.

use std::path::PathBuf;
use std::process::ExitCode;

use symspmv_verify::audit::{audit_workspace, UnsafeKind};
use symspmv_verify::jsonio::Json;
use symspmv_verify::rules::{default_rules, run_rules};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/verify; the workspace root is two up.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

struct Cli {
    root: PathBuf,
    json: Option<PathBuf>,
    markdown: Option<PathBuf>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        root: workspace_root(),
        json: None,
        markdown: None,
    };
    let mut args = std::env::args_os().skip(1);
    let mut saw_root = false;
    while let Some(arg) = args.next() {
        match arg.to_str() {
            Some("--json") => {
                cli.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            Some("--markdown") => {
                cli.markdown = Some(PathBuf::from(args.next().ok_or("--markdown needs a path")?));
            }
            Some(flag) if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            _ if !saw_root => {
                cli.root = PathBuf::from(arg);
                saw_root = true;
            }
            _ => return Err("at most one ROOT argument".to_string()),
        }
    }
    Ok(cli)
}

/// Escapes `|` so excerpts cannot break the markdown table.
fn md_cell(s: &str) -> String {
    s.replace('|', "\\|")
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("audit: {e}");
            eprintln!("usage: audit [ROOT] [--json FILE] [--markdown FILE]");
            return ExitCode::FAILURE;
        }
    };

    // Pass 1: the unsafe inventory (human report).
    let report = match audit_workspace(&cli.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: cannot walk {}: {e}", cli.root.display());
            return ExitCode::FAILURE;
        }
    };
    let mut blocks = 0usize;
    let mut fns = 0usize;
    for site in &report.sites {
        match site.kind {
            UnsafeKind::Fn | UnsafeKind::Trait => fns += 1,
            UnsafeKind::Block | UnsafeKind::Impl => blocks += 1,
        }
        let tag = site.invariant.as_deref().unwrap_or(
            if matches!(site.kind, UnsafeKind::Fn | UnsafeKind::Trait) {
                "# Safety doc"
            } else {
                "-"
            },
        );
        println!(
            "{}:{}: {:?} [{}]",
            site.file.display(),
            site.line,
            site.kind,
            tag
        );
    }
    println!(
        "\naudit: {} unsafe sites ({blocks} blocks/impls, {fns} fns/traits)",
        report.sites.len(),
    );

    // Pass 2: the full rule engine (subsumes the inventory's violations —
    // the UnsafeAnnotation rule re-runs the same checker through the
    // rule-engine walk, which also covers bin targets).
    let rules = default_rules();
    let findings = match run_rules(&cli.root, &rules) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("audit: rule engine failed on {}: {e}", cli.root.display());
            return ExitCode::FAILURE;
        }
    };

    println!("\nrules: {} registered", rules.len());
    for rule in &rules {
        let count = findings.iter().filter(|f| f.rule == rule.name()).count();
        println!(
            "  {:<22} {:>3} findings — {}",
            rule.name(),
            count,
            rule.description()
        );
    }
    for f in &findings {
        eprintln!(
            "audit: {}:{}: [{}] {}",
            f.file.display(),
            f.line,
            f.rule,
            f.message
        );
    }

    if let Some(path) = &cli.json {
        let doc = Json::Obj(vec![
            (
                "root".to_string(),
                Json::Str(cli.root.display().to_string()),
            ),
            (
                "rules".to_string(),
                Json::Arr(
                    rules
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::Str(r.name().to_string())),
                                (
                                    "description".to_string(),
                                    Json::Str(r.description().to_string()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "findings".to_string(),
                Json::Arr(findings.iter().map(|f| f.to_json()).collect()),
            ),
        ]);
        let text = match doc.write() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("audit: cannot serialize findings: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, text + "\n") {
            eprintln!("audit: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &cli.markdown {
        let mut md = String::from("## Static analysis findings\n\n");
        if findings.is_empty() {
            md.push_str("No findings: every rule passed on the whole tree. :white_check_mark:\n");
        } else {
            md.push_str("| Rule | File | Line | Excerpt |\n|---|---|---|---|\n");
            for f in &findings {
                md.push_str(&format!(
                    "| `{}` | `{}` | {} | `{}` |\n",
                    md_cell(f.rule),
                    md_cell(&f.file.display().to_string()),
                    f.line,
                    md_cell(&f.excerpt)
                ));
            }
        }
        if let Err(e) = std::fs::write(path, md) {
            eprintln!("audit: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "\naudit: {} findings across {} rules",
        findings.len(),
        rules.len()
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
