//! Workspace unsafe-audit binary: `cargo run -p symspmv-verify --bin audit`.
//!
//! Walks every `.rs` file from the workspace root, prints each `unsafe`
//! site with its certificate invariant, and exits non-zero if any site is
//! unannotated, names an unknown invariant, or is an `unsafe fn` without a
//! `# Safety` doc section.

use std::path::PathBuf;
use std::process::ExitCode;

use symspmv_verify::audit::{audit_workspace, UnsafeKind};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/verify; the workspace root is two up.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

fn main() -> ExitCode {
    let root = std::env::args_os()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(workspace_root);
    let report = match audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let mut blocks = 0usize;
    let mut fns = 0usize;
    for site in &report.sites {
        match site.kind {
            UnsafeKind::Fn | UnsafeKind::Trait => fns += 1,
            UnsafeKind::Block | UnsafeKind::Impl => blocks += 1,
        }
        let tag = site.invariant.as_deref().unwrap_or(
            if matches!(site.kind, UnsafeKind::Fn | UnsafeKind::Trait) {
                "# Safety doc"
            } else {
                "-"
            },
        );
        println!(
            "{}:{}: {:?} [{}]",
            site.file.display(),
            site.line,
            site.kind,
            tag
        );
    }

    let violations: Vec<_> = report.violations().collect();
    println!(
        "\naudit: {} unsafe sites ({blocks} blocks/impls, {fns} fns/traits), {} violations",
        report.sites.len(),
        violations.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        for site in violations {
            if let Some(v) = &site.violation {
                eprintln!("audit: {}:{}: {v}", site.file.display(), site.line);
            }
        }
        ExitCode::FAILURE
    }
}
