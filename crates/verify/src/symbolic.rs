//! The symbolic plan certifier: an interval/congruence abstract domain
//! over kernel plans.
//!
//! [`crate::writeset`] proves race freedom by *enumerating* every write the
//! structure implies — exact, but `O(nnz)` per certification, which neither
//! scales to large matrices nor states the symbolic property ("distinct
//! colors ⇒ disjoint row ranges") a coloring scheduler needs. This module
//! re-derives the same [`RaceCertificate`]s from a handful of abstract
//! facts instead:
//!
//! * **Intervals** — each thread's write footprint is summarized as
//!   half-open intervals: its direct row range `[start_i, end_i)`, its
//!   local region `[offsets[i], offsets[i] + region_len_i)`, and the hull
//!   of its declared conflict columns. Tiling, disjointness and containment
//!   become `O(p)` interval algebra.
//! * **Congruences** — lane-lifted (SpMM) plans place element
//!   `(row, lane)` at slot `row·lanes + lane`; the block layout is sound
//!   iff every block offset is `≡ 0 (mod lanes)` and is the scalar offset
//!   scaled ([`Congruence`]), which [`lift_symbolic`] checks per thread.
//! * **Structure axioms** ([`StructureFacts`]) — facts the storage
//!   constructors establish once per matrix (`O(n + nnz)`, amortized over
//!   every thread-count/strategy/lane configuration): the strict lower
//!   triangle (`col < row` for every stored entry, so a direct transposed
//!   write can never escape its partition), the first nonzero diagonal
//!   entry (skew side condition), the paired-array length (structural side
//!   condition) and the bandwidth (coloring reach).
//!
//! With the facts in hand, certification is `O(p + c)` where `c` is the
//! conflict-entry count (`c ≪ nnz`): the only non-interval obligation is
//! the indexing reduction's coverage check, which merges the declared
//! per-thread conflict profile against the `(vid, idx)` index — both
//! already sorted. The declared profile is produced by the planner's
//! conflict analysis; the enumerative checker independently re-walks the
//! structure, and the differential test (`tests/symbolic_differential.rs`)
//! pins the two bit-for-bit against each other across the whole
//! format × strategy × kind × threads × lanes cross-product.
//!
//! The module also adds the [`ProofForm::ColoringDisjoint`] proof form
//! (ROADMAP item 3): a stride-`k` cyclic coloring is race-free whenever
//! `k` exceeds the matrix bandwidth, because the write window of row `r`
//! is contained in `[r − bandwidth, r]` and same-class rows are spaced
//! `≥ k` apart — a purely symbolic theorem [`certify_color_symbolic`]
//! discharges in `O(1)` from the facts.

use crate::certificate::{ProofForm, RaceCertificate};
use crate::error::VerifyError;
use crate::writeset::{check_layout, check_tiling, SymPlanRef, SymStrategyKind};
use symspmv_runtime::Range;
use symspmv_sparse::symmetry::SymmetryKind;
use symspmv_sparse::SssMatrix;

/// A half-open interval `[lo, hi)` of rows or store slots — the basic
/// element of the abstract domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
}

impl Interval {
    /// The interval `[lo, hi)`; an inverted pair collapses to empty.
    pub fn new(lo: u64, hi: u64) -> Self {
        Interval { lo, hi: hi.max(lo) }
    }

    /// Number of elements covered.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether the interval covers nothing.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Whether two intervals share no element (always true if either is
    /// empty).
    pub fn disjoint(&self, other: &Interval) -> bool {
        self.is_empty() || other.is_empty() || self.hi <= other.lo || other.hi <= self.lo
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// The interval scaled by `k`: the image of `[lo, hi)` under
    /// `x ↦ x·k … x·k + k`, i.e. the lane-lifted footprint.
    pub fn scaled(&self, k: u64) -> Interval {
        Interval {
            lo: self.lo * k,
            hi: self.hi * k,
        }
    }
}

/// A congruence fact `value ≡ residue (mod modulus)` — the lane-offset
/// information of the abstract domain. Lane lifting is sound only for
/// offsets aligned to the lane width (residue zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Congruence {
    /// The modulus (lane width); at least 1.
    pub modulus: u64,
    /// `value mod modulus`.
    pub residue: u64,
}

impl Congruence {
    /// The congruence class of `value` modulo `modulus` (`modulus ≥ 1`).
    pub fn of(value: u64, modulus: u64) -> Self {
        let m = modulus.max(1);
        Congruence {
            modulus: m,
            residue: value % m,
        }
    }

    /// Whether the value is `≡ 0`, i.e. lane-aligned.
    pub fn aligned(&self) -> bool {
        self.residue == 0
    }
}

/// Structure axioms distilled from one matrix: everything the symbolic
/// certifier needs to know about the storage, independent of any plan.
///
/// Built once per matrix in `O(n + nnz)` ([`StructureFacts::of`]) and
/// reused across every (threads, strategy, lanes) configuration — the
/// per-plan certification itself never touches the structure again.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureFacts {
    /// Structural fingerprint of the matrix.
    pub fingerprint: u64,
    /// Matrix dimension.
    pub n: u32,
    /// Symmetry kind of the storage.
    pub kind: SymmetryKind,
    /// First nonzero diagonal entry `(row, value)`, if any — the skew
    /// side condition demands there is none.
    pub nonzero_diag: Option<(u32, f64)>,
    /// Length of the paired upper-value array (structural storage).
    pub paired_upper_len: usize,
    /// Stored strict-lower-triangle entry count.
    pub lower_nnz: usize,
    /// Bandwidth: `max_r (r − min col(r))` over stored entries; the write
    /// window of row `r` is contained in `[r − bandwidth, r]`.
    pub bandwidth: u32,
}

impl StructureFacts {
    /// Distills the axioms from an SSS matrix. The strict-lower-triangle
    /// and column-bound axioms are established by the `SssMatrix`
    /// constructors (they reject anything else), so they are not re-walked
    /// here; the diagonal scan and bandwidth are the only passes.
    pub fn of(sss: &SssMatrix) -> Self {
        let nonzero_diag = sss
            .dvalues()
            .iter()
            .enumerate()
            .find(|(_, &d)| d != 0.0)
            .map(|(r, &d)| (r as u32, d));
        let mut bandwidth = 0u32;
        for r in 0..sss.n() {
            let (cols, _) = sss.row(r);
            for &c in cols {
                bandwidth = bandwidth.max(r - c);
            }
        }
        StructureFacts {
            fingerprint: sss.fingerprint(),
            n: sss.n(),
            kind: sss.kind(),
            nonzero_diag,
            paired_upper_len: sss.upper_values().len(),
            lower_nnz: sss.lower_nnz(),
            bandwidth,
        }
    }
}

/// Symbolically certifies a symmetric-SpMV plan against the structure
/// facts and the planner's declared per-thread conflict profile
/// (`conflicts[i]` = sorted distinct transposed targets `c < start_i` of
/// thread `i`, as computed by the conflict analysis).
///
/// Produces a certificate structurally identical to
/// [`crate::writeset::certify_sym`]'s (same invariants, same footprint
/// statistics) with [`ProofForm::Symbolic`], but in `O(p + c)` instead of
/// `O(nnz)`:
///
/// * partition tiling and local-layout disjointness are interval checks;
/// * the multiply phase needs no enumeration at all — a direct transposed
///   write `y[c]` with `c ≥ start_i` satisfies `c < r < end_i` by the
///   strict-lower-triangle axiom, and a local write at slot `c < start_i`
///   is inside the region because the region length *is* `start_i`
///   (or `n` for the naive family); only the declared conflict hull is
///   checked against the split;
/// * the indexing reduction's split boundaries are peeked (`O(p)`), and
///   coverage is a sorted merge of the declared profile against the
///   `(vid, idx)` index (`O(c)`).
///
/// Soundness is relative to the declared profile; the enumerative checker
/// re-derives the profile from the structure independently, and the
/// differential suite keeps the two in lock-step.
pub fn certify_sym_symbolic(
    facts: &StructureFacts,
    plan: &SymPlanRef<'_>,
    conflicts: &[Vec<u32>],
) -> Result<RaceCertificate, VerifyError> {
    let n = facts.n;
    let p = plan.parts.len();
    check_tiling(plan.parts, n)?;

    let direct = plan.strategy != SymStrategyKind::Naive;
    let region_len = |i: usize| -> usize {
        if direct {
            plan.parts[i].start as usize
        } else {
            n as usize
        }
    };
    check_layout(plan, region_len)?;

    // Multiply phase, symbolically. The conflict hull of thread i must lie
    // inside [0, start_i): combined with region_len(i) == start_i this
    // proves every local write lands in the thread's own region, and the
    // strict-lower-triangle axiom bounds every direct write by end_i.
    if conflicts.len() != p {
        return Err(VerifyError::MalformedPlan {
            reason: format!("{} conflict profiles for {p} threads", conflicts.len()),
        });
    }
    for (i, profile) in conflicts.iter().enumerate() {
        if let Some(&max) = profile.last() {
            let split = plan.parts[i].start;
            let hull = Interval::new(u64::from(profile[0]), u64::from(max) + 1);
            if !Interval::new(0, u64::from(split)).contains(&hull) {
                if direct {
                    return Err(VerifyError::EscapedWrite {
                        tid: i,
                        target: max,
                    });
                }
                return Err(VerifyError::MalformedPlan {
                    reason: format!(
                        "conflict profile of thread {i} reaches {max}, past its split {split}"
                    ),
                });
            }
        }
    }

    // Reduce phase.
    match plan.strategy {
        SymStrategyKind::Naive | SymStrategyKind::EffectiveRanges => {
            match check_tiling(plan.row_chunks, n) {
                Ok(()) => {}
                Err(VerifyError::OverlappingDirectWrites { row, first, second }) => {
                    return Err(VerifyError::ReductionSliceOverlap {
                        idx: row,
                        first,
                        second,
                    })
                }
                Err(e) => return Err(e),
            }
        }
        SymStrategyKind::Indexing => check_index_symbolic(plan, conflicts)?,
    }

    let mut invariants = vec![
        "reduction-slice".to_string(),
        "effective-region".to_string(),
    ];
    if direct {
        invariants.insert(0, "disjoint-direct".to_string());
    }
    match facts.kind {
        SymmetryKind::Symmetric => {}
        SymmetryKind::Skew => {
            if let Some((r, d)) = facts.nonzero_diag {
                return Err(VerifyError::KindSideCondition {
                    kind: "skew",
                    reason: format!("diagonal entry {r} is {d}, must be zero"),
                });
            }
            invariants.push("skew-zero-diagonal".to_string());
        }
        SymmetryKind::Structural => {
            if facts.paired_upper_len != facts.lower_nnz {
                return Err(VerifyError::KindSideCondition {
                    kind: "structural",
                    reason: format!(
                        "paired upper array has {} values for {} lower entries",
                        facts.paired_upper_len, facts.lower_nnz
                    ),
                });
            }
            invariants.push("structural-paired".to_string());
        }
    }
    let conflict_entries = if plan.strategy == SymStrategyKind::Indexing {
        plan.entries.len()
    } else {
        conflicts.iter().map(Vec::len).sum()
    };
    Ok(RaceCertificate {
        fingerprint: facts.fingerprint,
        n: n as usize,
        nthreads: p,
        family: "sym-sss".to_string(),
        strategy: match plan.strategy {
            SymStrategyKind::Naive => "naive",
            SymStrategyKind::EffectiveRanges => "eff",
            SymStrategyKind::Indexing => "idx",
        }
        .to_string(),
        symmetry: facts.kind.tag().to_string(),
        invariants,
        direct_rows: if direct { n as usize } else { 0 },
        local_elems: if direct {
            plan.parts.iter().map(|r| r.start as usize).sum()
        } else {
            p * n as usize
        },
        conflict_entries,
        lanes: 1,
        proof: ProofForm::Symbolic,
    })
}

/// The indexing-reduction obligations, without enumeration: split shape
/// and boundary peeks are `O(p)`; index sortedness, bounds and coverage
/// are one `O(c)` merge against the declared profile.
fn check_index_symbolic(plan: &SymPlanRef<'_>, conflicts: &[Vec<u32>]) -> Result<(), VerifyError> {
    let p = plan.parts.len();
    let entries = plan.entries;
    let splits = plan.splits;
    if splits.len() != p + 1 {
        return Err(VerifyError::MalformedPlan {
            reason: format!("{} splits for {p} threads", splits.len()),
        });
    }
    if splits[0] != 0 || splits[p] != entries.len() || splits.windows(2).any(|w| w[0] > w[1]) {
        return Err(VerifyError::MalformedPlan {
            reason: format!("splits {splits:?} do not cover {} entries", entries.len()),
        });
    }
    for w in entries.windows(2) {
        if (w[1].idx, w[1].vid) <= (w[0].idx, w[0].vid) {
            return Err(VerifyError::MalformedPlan {
                reason: format!(
                    "index not strictly sorted at ({}, {}) / ({}, {})",
                    w[0].idx, w[0].vid, w[1].idx, w[1].vid
                ),
            });
        }
    }
    // Boundary peeks: no idx value may span two reduction slices.
    for (k, &b) in splits.iter().enumerate().take(p).skip(1) {
        if b > 0 && b < entries.len() && entries[b - 1].idx == entries[b].idx {
            return Err(VerifyError::ReductionSliceOverlap {
                idx: entries[b].idx,
                first: k - 1,
                second: k,
            });
        }
    }
    // Bounds and coverage in one merge. Per vid, both the entry stream and
    // the declared profile are sorted ascending; a profile element skipped
    // by the entry stream can never be covered later.
    let mut cursor = vec![0usize; p];
    let mut missing: Option<(usize, u32)> = None;
    let note_missing = |tid: usize, idx: u32, slot: &mut Option<(usize, u32)>| {
        if slot.is_none_or(|(t, i)| (tid, idx) < (t, i)) {
            *slot = Some((tid, idx));
        }
    };
    for e in entries {
        let vid = e.vid as usize;
        if vid >= p {
            return Err(VerifyError::MalformedPlan {
                reason: format!("entry names thread {vid} of {p}"),
            });
        }
        if e.idx >= plan.parts[vid].start {
            return Err(VerifyError::EscapedWrite {
                tid: vid,
                target: e.idx,
            });
        }
        while cursor[vid] < conflicts[vid].len() && conflicts[vid][cursor[vid]] < e.idx {
            note_missing(vid, conflicts[vid][cursor[vid]], &mut missing);
            cursor[vid] += 1;
        }
        if cursor[vid] < conflicts[vid].len() && conflicts[vid][cursor[vid]] == e.idx {
            cursor[vid] += 1;
        }
    }
    for (tid, profile) in conflicts.iter().enumerate() {
        if cursor[tid] < profile.len() {
            note_missing(tid, profile[cursor[tid]], &mut missing);
        }
    }
    if let Some((tid, idx)) = missing {
        return Err(VerifyError::IndexIncomplete { tid, idx });
    }
    Ok(())
}

/// Symbolic lane lifting: the congruence-domain counterpart of
/// [`crate::writeset::lift_sym_certificate`].
///
/// Thread `i`'s scalar local region `[o_i, o_i + ℓ_i)` lifts to the block
/// region `[o_i·k, (o_i + ℓ_i)·k)` ([`Interval::scaled`]); the lift is
/// sound iff every block offset is lane-aligned (`≡ 0 (mod k)`,
/// [`Congruence`]) *and* is the scalar offset scaled, and the block store
/// is the scalar store scaled. Side conditions and error payloads match
/// the enumerative lifter exactly; the result keeps the base proof form.
pub fn lift_symbolic(
    base: &RaceCertificate,
    lanes: usize,
    base_offsets: &[usize],
    base_local_len: usize,
    block_offsets: &[usize],
    block_local_len: usize,
) -> Result<RaceCertificate, VerifyError> {
    if !symspmv_sparse::block::SUPPORTED_LANES.contains(&lanes) {
        return Err(VerifyError::BadLaneCount { lanes });
    }
    if base.lanes != 1 {
        return Err(VerifyError::MalformedPlan {
            reason: format!("cannot lift a certificate already at {} lanes", base.lanes),
        });
    }
    if block_offsets.len() != base_offsets.len() {
        return Err(VerifyError::MalformedPlan {
            reason: format!(
                "{} block offsets for {} scalar offsets",
                block_offsets.len(),
                base_offsets.len()
            ),
        });
    }
    let k = lanes as u64;
    for (tid, (&b, &s)) in block_offsets.iter().zip(base_offsets).enumerate() {
        let congruence = Congruence::of(b as u64, k);
        if !congruence.aligned() || (b as u64) / k != s as u64 {
            return Err(VerifyError::LaneOffsetMismatch {
                tid,
                expected: s * lanes,
                actual: b,
            });
        }
    }
    let scalar_store = Interval::new(0, base_local_len as u64);
    if block_local_len as u64 != scalar_store.scaled(k).len() {
        return Err(VerifyError::LaneRegionMismatch {
            expected: base_local_len * lanes,
            actual: block_local_len,
        });
    }
    let mut cert = base.clone();
    cert.lanes = lanes;
    cert.local_elems = base.local_elems * lanes;
    cert.conflict_entries = base.conflict_entries * lanes;
    if !cert.proves("lane-lifted") {
        cert.invariants.push("lane-lifted".to_string());
    }
    Ok(cert)
}

/// Symbolic row-partition certificate: the rows obligation (partitions
/// tile `0..n`) is already interval-shaped, so this is the same `O(p)`
/// check as [`crate::writeset::certify_rows`], stamped with
/// [`ProofForm::Symbolic`] so every kernel family has a symbolic
/// certifier.
pub fn certify_rows_symbolic(
    fingerprint: u64,
    n: u32,
    parts: &[Range],
    family: &str,
) -> Result<RaceCertificate, VerifyError> {
    check_tiling(parts, n)?;
    Ok(RaceCertificate {
        fingerprint,
        n: n as usize,
        nthreads: parts.len(),
        family: family.to_string(),
        strategy: String::new(),
        symmetry: "none".to_string(),
        invariants: vec!["disjoint-direct".to_string()],
        direct_rows: n as usize,
        local_elems: 0,
        conflict_entries: 0,
        lanes: 1,
        proof: ProofForm::Symbolic,
    })
}

/// The rows of color class `j` of a stride-`k` cyclic coloring:
/// `j, j + k, j + 2k, …` below `n`. Helper for schedulers and tests that
/// materialize the classes [`certify_color_symbolic`] reasons about.
pub fn stride_classes(n: u32, stride: u32) -> Vec<Vec<u32>> {
    (0..stride.min(n))
        .map(|j| (j..n).step_by(stride.max(1) as usize).collect())
        .collect()
}

/// Certifies a stride-`k` cyclic coloring symbolically — the
/// `ColoringDisjoint` proof form (ROADMAP item 3, RACE-style scheduling).
///
/// Rows of class `j` are `j, j + k, j + 2k, …`: same-class rows are spaced
/// `≥ k` apart. The write window of row `r` is `[r − bandwidth, r]`
/// (strict lower triangle plus the diagonal), so two same-class rows
/// share a target only if their distance is `≤ bandwidth`; `k > bandwidth`
/// therefore proves every class barrier-free — in `O(1)` from the facts,
/// without materializing a single class. Classes tile `0..n` by
/// construction of the residue system.
///
/// The certificate matches [`crate::writeset::certify_color`] over
/// [`stride_classes`] field-for-field, with
/// [`ProofForm::ColoringDisjoint`] recording the stride and the reach the
/// proof rests on. Rejections are over-approximate in the sound
/// direction: a stride within the bandwidth is refused even if the
/// concrete structure happens to avoid the collision.
pub fn certify_color_symbolic(
    facts: &StructureFacts,
    stride: u32,
) -> Result<RaceCertificate, VerifyError> {
    if stride == 0 || stride > facts.n {
        return Err(VerifyError::MalformedPlan {
            reason: format!("coloring stride {stride} outside 1..={}", facts.n),
        });
    }
    if stride <= facts.bandwidth {
        // Witness in the abstract domain: rows 0 and `stride` are in class
        // 0, and the write window of row `stride` reaches down to
        // `stride − bandwidth ≤ 0`, overlapping row 0's own target.
        return Err(VerifyError::ColoringConflict {
            color: 0,
            row_a: 0,
            row_b: stride,
            target: 0,
        });
    }
    Ok(RaceCertificate {
        fingerprint: facts.fingerprint,
        n: facts.n as usize,
        nthreads: 0,
        family: "sym-color".to_string(),
        strategy: String::new(),
        symmetry: facts.kind.tag().to_string(),
        invariants: vec!["color-class".to_string(), "disjoint-direct".to_string()],
        direct_rows: facts.n as usize,
        local_elems: 0,
        conflict_entries: stride as usize,
        lanes: 1,
        proof: ProofForm::ColoringDisjoint {
            stride,
            reach: facts.bandwidth,
        },
    })
}

/// Structure-derived axioms of a RACE level coloring, established once per
/// `(matrix, coloring)` pair — the symbolic analogue of
/// [`StructureFacts`] for the recursive scheduler.
///
/// Two axioms are walked from the structure (`O(nnz)`, amortized over
/// every thread-count/lane configuration the plan cache derives):
///
/// 1. **Level locality** — every stored edge `(r, c)` spans at most one
///    BFS level, so the write window of row `r` only touches rows whose
///    level is within `level(r) ± 1`; rows whose levels differ by ≥ 3 can
///    never conflict. This is what makes the `level % 3` phase folding of
///    the group numbering sound.
/// 2. **Subcolor disjointness** — within one `(level, subcolor)` class the
///    write sets `{r} ∪ cols(r)` are pairwise disjoint.
///
/// Together: two rows share a group iff they agree on `level % 3` *and*
/// subcolor, which by the axioms means either the same level (axiom 2) or
/// levels ≥ 3 apart (axiom 1) — disjoint write sets either way. The
/// per-plan check [`certify_race_symbolic`] then never touches the
/// structure again: it only verifies the arithmetic of the group numbering
/// and the tiling of the barriered rounds, in `O(n + p·groups)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringFacts {
    /// Structural fingerprint of the matrix the axioms were walked on.
    pub fingerprint: u64,
    /// Matrix dimension.
    pub n: u32,
    /// BFS level of every row.
    pub levels: Vec<u32>,
    /// Within-level subcolor of every row.
    pub subcolors: Vec<u32>,
    /// Palette size of each `level % 3` phase (max subcolor count over the
    /// levels congruent to that residue).
    pub phase_sizes: [u32; 3],
}

impl ColoringFacts {
    /// Walks the two coloring axioms on the structure, rejecting level or
    /// subcolor assignments that do not support the distance-2 proof.
    pub fn establish(
        sss: &SssMatrix,
        levels: &[u32],
        subcolors: &[u32],
    ) -> Result<Self, VerifyError> {
        let n = sss.n() as usize;
        if levels.len() != n || subcolors.len() != n {
            return Err(VerifyError::MalformedPlan {
                reason: format!(
                    "{} levels / {} subcolors for {n} rows",
                    levels.len(),
                    subcolors.len()
                ),
            });
        }
        // Axiom 1: stored edges span at most one level.
        for r in 0..sss.n() {
            let (cols, _) = sss.row(r);
            for &c in cols {
                let (lr, lc) = (levels[r as usize], levels[c as usize]);
                if lr.abs_diff(lc) > 1 {
                    return Err(VerifyError::MalformedPlan {
                        reason: format!(
                            "edge ({r}, {c}) spans levels {lr} and {lc}; \
                             BFS levels admit a span of at most 1"
                        ),
                    });
                }
            }
        }
        // Axiom 2: within one (level, subcolor) class, write sets are
        // pairwise disjoint. Rows are grouped by class so the target
        // stamps of one class are never clobbered by another's.
        let mut order: Vec<u32> = (0..sss.n()).collect();
        order.sort_unstable_by_key(|&r| (levels[r as usize], subcolors[r as usize], r));
        let mut claimed_by = vec![u32::MAX; n];
        let mut last_key = vec![u64::MAX; n];
        for &r in &order {
            let key = (u64::from(levels[r as usize]) << 32) | u64::from(subcolors[r as usize]);
            let (cols, _) = sss.row(r);
            for target in cols.iter().copied().chain(std::iter::once(r)) {
                let t = target as usize;
                if last_key[t] == key && claimed_by[t] != r {
                    return Err(VerifyError::ColoringConflict {
                        color: subcolors[r as usize],
                        row_a: claimed_by[t],
                        row_b: r,
                        target,
                    });
                }
                last_key[t] = key;
                claimed_by[t] = r;
            }
        }
        let mut phase_sizes = [0u32; 3];
        for r in 0..n {
            let ph = (levels[r] % 3) as usize;
            phase_sizes[ph] = phase_sizes[ph].max(subcolors[r] + 1);
        }
        Ok(ColoringFacts {
            fingerprint: sss.fingerprint(),
            n: sss.n(),
            levels: levels.to_vec(),
            subcolors: subcolors.to_vec(),
            phase_sizes,
        })
    }
}

/// Symbolically certifies a RACE schedule against established
/// [`ColoringFacts`]: the group of every row must be exactly
/// `base[level % 3] + subcolor` for the prefix-sum `base` of the phase
/// palette sizes, the group table must mirror that map, and every group's
/// per-thread parts must tile its row list. With the two axioms already on
/// file, same-group rows provably have disjoint write sets, so the checks
/// here never walk the structure — `O(n + p·groups)` per plan.
///
/// The certificate is field-for-field identical to
/// [`crate::writeset::certify_race`]'s, with the same
/// [`ProofForm::ColoringDisjoint`] proof (`stride` = group count,
/// `reach` = 2).
pub fn certify_race_symbolic(
    facts: &StructureFacts,
    coloring: &ColoringFacts,
    group_of: &[u32],
    groups: &[Vec<u32>],
    group_parts: &[Vec<Range>],
    nthreads: usize,
) -> Result<RaceCertificate, VerifyError> {
    if coloring.fingerprint != facts.fingerprint || coloring.n != facts.n {
        return Err(VerifyError::MalformedPlan {
            reason: format!(
                "coloring facts for matrix {:#x} (n = {}) used with matrix {:#x} (n = {})",
                coloring.fingerprint, coloring.n, facts.fingerprint, facts.n
            ),
        });
    }
    let n = facts.n as usize;
    if group_of.len() != n {
        return Err(VerifyError::MalformedPlan {
            reason: format!("group map has {} entries for {n} rows", group_of.len()),
        });
    }
    let sizes = coloring.phase_sizes;
    let bases = [0, sizes[0], sizes[0] + sizes[1]];
    let ngroups = (sizes[0] + sizes[1] + sizes[2]) as usize;
    if groups.len() != ngroups {
        return Err(VerifyError::MalformedPlan {
            reason: format!(
                "group table has {} groups for a palette of {ngroups}",
                groups.len()
            ),
        });
    }
    for (r, &grp) in group_of.iter().enumerate().take(n) {
        let (lv, sc) = (coloring.levels[r], coloring.subcolors[r]);
        let ph = (lv % 3) as usize;
        if sc >= sizes[ph] {
            return Err(VerifyError::MalformedPlan {
                reason: format!(
                    "row {r} subcolor {sc} outside phase {ph} palette {}",
                    sizes[ph]
                ),
            });
        }
        let expect = bases[ph] + sc;
        if grp != expect {
            return Err(VerifyError::MalformedPlan {
                reason: format!(
                    "row {r} grouped as {grp} but level {lv} subcolor {sc} prove group {expect}"
                ),
            });
        }
    }
    // The group table must mirror the (now-proven) group map exactly.
    let mut seen = vec![false; n];
    let mut total = 0usize;
    for (gid, rows) in groups.iter().enumerate() {
        for &r in rows {
            if (r as usize) >= n || group_of[r as usize] != gid as u32 {
                return Err(VerifyError::MalformedPlan {
                    reason: format!("group {gid} lists row {r} whose proven group differs"),
                });
            }
            if seen[r as usize] {
                return Err(VerifyError::MalformedPlan {
                    reason: format!("row {r} listed twice in the group table"),
                });
            }
            seen[r as usize] = true;
            total += 1;
        }
    }
    if total != n {
        return Err(VerifyError::MalformedPlan {
            reason: format!("group table covers {total} of {n} rows"),
        });
    }
    if group_parts.len() != groups.len() {
        return Err(VerifyError::MalformedPlan {
            reason: format!(
                "{} part lists for {} groups",
                group_parts.len(),
                groups.len()
            ),
        });
    }
    for (gid, (rows, parts)) in groups.iter().zip(group_parts).enumerate() {
        if parts.len() != nthreads {
            return Err(VerifyError::MalformedPlan {
                reason: format!(
                    "group {gid} has {} parts for {nthreads} threads",
                    parts.len()
                ),
            });
        }
        check_tiling(parts, rows.len() as u32)?;
    }

    let mut invariants = vec!["color-class".to_string(), "disjoint-direct".to_string()];
    match facts.kind {
        SymmetryKind::Symmetric => {}
        SymmetryKind::Skew => {
            if let Some((r, d)) = facts.nonzero_diag {
                return Err(VerifyError::KindSideCondition {
                    kind: "skew",
                    reason: format!("diagonal entry {r} is {d}, must be zero"),
                });
            }
            invariants.push("skew-zero-diagonal".to_string());
        }
        SymmetryKind::Structural => {
            if facts.paired_upper_len != facts.lower_nnz {
                return Err(VerifyError::KindSideCondition {
                    kind: "structural",
                    reason: format!(
                        "paired upper array has {} values for {} lower entries",
                        facts.paired_upper_len, facts.lower_nnz
                    ),
                });
            }
            invariants.push("structural-paired".to_string());
        }
    }
    Ok(RaceCertificate {
        fingerprint: facts.fingerprint,
        n,
        nthreads,
        family: "sym-sss".to_string(),
        strategy: "race".to_string(),
        symmetry: facts.kind.tag().to_string(),
        invariants,
        direct_rows: n,
        local_elems: 0,
        conflict_entries: groups.len(),
        lanes: 1,
        proof: ProofForm::ColoringDisjoint {
            stride: groups.len() as u32,
            reach: 2,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::CooMatrix;

    fn sss(entries: &[(u32, u32)], n: u32) -> SssMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
        }
        for &(r, c) in entries {
            coo.push(r, c, -1.0);
            coo.push(c, r, -1.0);
        }
        SssMatrix::from_coo(&coo, 0.0).unwrap()
    }

    #[test]
    fn interval_algebra() {
        let a = Interval::new(0, 4);
        let b = Interval::new(4, 8);
        let c = Interval::new(3, 5);
        assert!(a.disjoint(&b));
        assert!(!a.disjoint(&c));
        assert!(Interval::new(0, 8).contains(&c));
        assert!(!a.contains(&c));
        assert!(Interval::new(2, 2).is_empty());
        assert!(a.disjoint(&Interval::new(2, 2)));
        assert_eq!(a.scaled(4), Interval::new(0, 16));
        assert_eq!(Interval::new(3, 5).scaled(2), Interval::new(6, 10));
    }

    #[test]
    fn congruence_alignment() {
        assert!(Congruence::of(16, 4).aligned());
        assert!(!Congruence::of(17, 4).aligned());
        assert_eq!(Congruence::of(17, 4).residue, 1);
        assert!(Congruence::of(0, 1).aligned());
    }

    #[test]
    fn facts_capture_diag_and_bandwidth() {
        let m = sss(&[(5, 1), (6, 2), (7, 6)], 8);
        let f = StructureFacts::of(&m);
        assert_eq!(f.n, 8);
        assert_eq!(f.fingerprint, m.fingerprint());
        assert_eq!(f.nonzero_diag, Some((0, 2.0)));
        assert_eq!(f.bandwidth, 4, "widest row span is (5, 1)");
        assert_eq!(f.lower_nnz, 3);
    }

    #[test]
    fn stride_coloring_certifies_beyond_the_bandwidth() {
        let m = sss(&[(1, 0), (2, 1), (3, 2)], 4); // tridiagonal, bandwidth 1
        let f = StructureFacts::of(&m);
        assert_eq!(f.bandwidth, 1);
        let cert = certify_color_symbolic(&f, 2).unwrap();
        assert_eq!(
            cert.proof,
            ProofForm::ColoringDisjoint {
                stride: 2,
                reach: 1
            }
        );
        assert_eq!(cert.conflict_entries, 2);
        assert!(cert.proves("color-class"));
        // Within the bandwidth the class spacing cannot be proved.
        assert!(matches!(
            certify_color_symbolic(&f, 1),
            Err(VerifyError::ColoringConflict { .. })
        ));
        assert!(matches!(
            certify_color_symbolic(&f, 0),
            Err(VerifyError::MalformedPlan { .. })
        ));
        assert!(matches!(
            certify_color_symbolic(&f, 5),
            Err(VerifyError::MalformedPlan { .. })
        ));
    }

    #[test]
    fn stride_classes_tile_the_rows() {
        let classes = stride_classes(10, 3);
        assert_eq!(classes.len(), 3);
        let mut all: Vec<u32> = classes.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert_eq!(classes[1], vec![1, 4, 7]);
    }
}
