//! The unsafe-audit lint: every `unsafe` block in the workspace must carry
//! a `// SAFETY(cert: <invariant>):` comment naming a certificate
//! invariant from the registry below, and every `unsafe fn` declaration
//! must document its contract with a `# Safety` doc section.
//!
//! The scanner is deliberately a lexer, not a parser: it masks comments,
//! strings and char literals, finds `unsafe` at word boundaries, classifies
//! the following token (`fn` / `impl` / `{` / trait body) and then searches
//! the preceding comment lines for the annotation. This catches the thing
//! that matters — an unsafe block nobody wrote a justification for —
//! without needing rustc internals.
//!
//! Run as a test (`tests/lint_unsafe.rs` at the workspace root) and as a
//! binary: `cargo run -p symspmv-verify --bin audit`.

use std::fmt;
use std::path::{Path, PathBuf};

/// Certificate invariants a `SAFETY(cert: …)` annotation may reference.
/// Each name is established by a specific layer of the verification stack;
/// an annotation naming anything else fails the audit.
pub const KNOWN_INVARIANTS: &[(&str, &str)] = &[
    (
        "pool-barrier",
        "WorkerPool round barrier: workers are quiescent between rounds, so \
         the scoped-lifetime transmute never outlives the borrow",
    ),
    (
        "caller-disjoint",
        "SharedBuf contract: callers claim disjoint index sets per round",
    ),
    (
        "disjoint-direct",
        "write-set verifier: per-thread direct write ranges tile the output \
         disjointly (RaceCertificate invariant)",
    ),
    (
        "effective-region",
        "write-set verifier: transposed writes stay inside the thread's \
         declared local region (RaceCertificate invariant)",
    ),
    (
        "reduction-slice",
        "write-set verifier: reduction slices fold disjoint output targets \
         (RaceCertificate invariant)",
    ),
    (
        "lane-lifted",
        "write-set verifier: a scalar proof lifted to k lanes — block slot \
         row*lanes+lane inherits the scalar row's disjointness \
         (lift_sym_certificate side conditions)",
    ),
    (
        "color-class",
        "coloring verifier: rows of one class have pairwise disjoint write \
         sets (RaceCertificate invariant)",
    ),
    (
        "coloring-disjoint",
        "symbolic certifier: cyclic-coloring spacing theorem — same-class \
         rows are one stride apart, write windows reach at most the \
         bandwidth back (ProofForm::ColoringDisjoint)",
    ),
    (
        "csx-boundary",
        "CSX-Sym checker: no encoded pattern straddles the local-vs-direct \
         column split (RaceCertificate invariant)",
    ),
    (
        "atomic-view",
        "element type reinterpreted as its atomic wrapper; same layout, \
         all access goes through atomic ops",
    ),
    (
        "band-private",
        "CSB rowband phase: each band's partial vector is touched by \
         exactly one thread until the merge barrier",
    ),
    (
        "first-touch",
        "uninitialized arena pages are written before first read, by the \
         thread that will own them",
    ),
    (
        "test-only",
        "test scaffolding exercising the unsafe API under a controlled \
         schedule; not reachable from library code",
    ),
];

/// What the `unsafe` keyword introduces at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// An `unsafe { … }` block (or `unsafe` expression position).
    Block,
    /// An `unsafe fn` declaration — requires a `# Safety` doc section.
    Fn,
    /// An `unsafe impl` (Send/Sync etc.) — requires `SAFETY(cert: …)`.
    Impl,
    /// An `unsafe trait` declaration.
    Trait,
}

/// One `unsafe` occurrence found by the scanner.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// File containing the site.
    pub file: PathBuf,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// What the keyword introduces.
    pub kind: UnsafeKind,
    /// The invariant named by the annotation, if any.
    pub invariant: Option<String>,
    /// Why the audit rejects the site, if it does.
    pub violation: Option<Violation>,
}

/// The ways a site can fail the audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// No `SAFETY(cert: …)` comment within reach of the site.
    Unannotated,
    /// The annotation names an invariant outside [`KNOWN_INVARIANTS`].
    UnknownInvariant(String),
    /// An `unsafe fn` without a `# Safety` doc section.
    MissingSafetyDoc,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Unannotated => write!(f, "no SAFETY(cert: ...) annotation"),
            Violation::UnknownInvariant(name) => {
                write!(f, "unknown certificate invariant `{name}`")
            }
            Violation::MissingSafetyDoc => write!(f, "unsafe fn without a `# Safety` doc section"),
        }
    }
}

/// Audit result over a set of files.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Every `unsafe` site found, annotated or not.
    pub sites: Vec<UnsafeSite>,
}

impl AuditReport {
    /// Sites that fail the audit.
    pub fn violations(&self) -> impl Iterator<Item = &UnsafeSite> {
        self.sites.iter().filter(|s| s.violation.is_some())
    }

    /// Whether the audit passes.
    pub fn is_clean(&self) -> bool {
        self.sites.iter().all(|s| s.violation.is_none())
    }
}

/// Replaces comment, string-literal and char-literal bytes with spaces
/// (preserving newlines and `//`-comment text, which the annotation lookup
/// needs) so the keyword scan never fires inside them. Line comments are
/// *kept*; block comments, strings and chars are blanked.
pub(crate) fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Keep line comments verbatim — SAFETY annotations live here.
                while i < b.len() && b[i] != b'\n' {
                    out.push(b[i]);
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"..." / r#"..."#; count the hashes.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    // Blank the `r`, the hashes and the opening quote.
                    out.extend(std::iter::repeat_n(b' ', hashes + 2));
                    i += hashes + 2;
                    loop {
                        if i >= b.len() {
                            break;
                        }
                        if b[i] == b'"' {
                            let mut k = i + 1;
                            let mut seen = 0;
                            while k < b.len() && b[k] == b'#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                out.extend(std::iter::repeat_n(b' ', k - i));
                                i = k;
                                break;
                            }
                        }
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: 'x' or '\n' is a literal;
                // 'static / 'a are lifetimes and pass through.
                let is_char = (i + 1 < b.len() && b[i + 1] == b'\\')
                    || (i + 2 < b.len() && b[i + 2] == b'\'');
                if is_char {
                    out.push(b' ');
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' && i + 1 < b.len() {
                            out.extend_from_slice(b"  ");
                            i += 2;
                        } else if b[i] == b'\'' {
                            out.push(b' ');
                            i += 1;
                            break;
                        } else {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Extracts `name` from a `SAFETY(cert: name)` marker in `line`, if any.
fn annotation_in(line: &str) -> Option<&str> {
    let pos = line.find("SAFETY(cert:")?;
    let rest = &line[pos + "SAFETY(cert:".len()..];
    let end = rest.find(')')?;
    Some(rest[..end].trim())
}

/// How many lines above a site the annotation lookup scans. Generous
/// enough for a multi-line justification plus attributes, small enough
/// that an annotation cannot accidentally cover a distant site.
const LOOKBACK: usize = 12;

/// Audits one file's source text. `path` is only recorded in the sites.
pub fn audit_source(path: &Path, src: &str) -> Vec<UnsafeSite> {
    let masked = mask_source(src);
    let lines: Vec<&str> = masked.lines().collect();
    let bytes = masked.as_bytes();
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |off: usize| match line_starts.binary_search(&off) {
        Ok(l) => l,
        Err(l) => l - 1,
    };

    let mut sites = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = masked[search..].find("unsafe") {
        let off = search + rel;
        search = off + "unsafe".len();
        // Word boundaries.
        if off > 0 && is_ident_byte(bytes[off - 1]) {
            continue;
        }
        if search < bytes.len() && is_ident_byte(bytes[search]) {
            continue;
        }
        let lineno = line_of(off);
        // Skip if the keyword itself sits inside a kept line comment.
        if let Some(cpos) = lines[lineno].find("//") {
            let col = off - line_starts[lineno];
            if col >= cpos {
                continue;
            }
        }
        // Classify by the next non-whitespace token.
        let after = masked[search..].trim_start();
        let kind = if after.starts_with("fn") {
            UnsafeKind::Fn
        } else if after.starts_with("impl") {
            UnsafeKind::Impl
        } else if after.starts_with("trait") {
            UnsafeKind::Trait
        } else {
            UnsafeKind::Block
        };

        let (invariant, violation) = match kind {
            UnsafeKind::Fn | UnsafeKind::Trait => {
                // Contract belongs in docs: look for `# Safety` in the doc
                // comment block above (or a SAFETY(cert: …) for private
                // helpers whose contract *is* a certificate invariant).
                let mut found = false;
                let mut inv = None;
                for back in lines[..lineno].iter().rev().take(LOOKBACK) {
                    let t = back.trim_start();
                    if let Some(name) = annotation_in(t) {
                        inv = Some(name.to_string());
                        found = true;
                        break;
                    }
                    if t.starts_with("///") && t.contains("# Safety") {
                        found = true;
                        break;
                    }
                    if !(t.starts_with("///")
                        || t.starts_with("//")
                        || t.starts_with("#[")
                        || t.starts_with("#![")
                        || t.is_empty()
                        || t.starts_with("pub")
                        || t.starts_with("const"))
                    {
                        break;
                    }
                }
                // Same-line trailing annotation also accepted.
                if !found {
                    if let Some(name) = annotation_in(lines[lineno]) {
                        inv = Some(name.to_string());
                        found = true;
                    }
                }
                match (found, &inv) {
                    (false, _) => (None, Some(Violation::MissingSafetyDoc)),
                    (true, Some(name)) if !known(name) => {
                        (inv.clone(), Some(Violation::UnknownInvariant(name.clone())))
                    }
                    (true, _) => (inv, None),
                }
            }
            UnsafeKind::Block | UnsafeKind::Impl => {
                // Look on the same line first, then upward through
                // comment/attribute/blank lines.
                let mut inv = annotation_in(lines[lineno]).map(str::to_string);
                if inv.is_none() {
                    for back in lines[..lineno].iter().rev().take(LOOKBACK) {
                        let t = back.trim_start();
                        if let Some(name) = annotation_in(t) {
                            inv = Some(name.to_string());
                            break;
                        }
                        if !(t.starts_with("//") || t.starts_with("#[") || t.is_empty()) {
                            break;
                        }
                    }
                }
                match &inv {
                    None => (None, Some(Violation::Unannotated)),
                    Some(name) if !known(name) => {
                        (inv.clone(), Some(Violation::UnknownInvariant(name.clone())))
                    }
                    Some(_) => (inv, None),
                }
            }
        };

        sites.push(UnsafeSite {
            file: path.to_path_buf(),
            line: lineno + 1,
            kind,
            invariant,
            violation,
        });
    }
    sites
}

fn known(name: &str) -> bool {
    KNOWN_INVARIANTS.iter().any(|&(k, _)| k == name)
}

/// Recursively audits every `.rs` file under `root`, skipping `target`,
/// VCS metadata and hidden directories.
pub fn audit_workspace(root: &Path) -> std::io::Result<AuditReport> {
    let mut report = AuditReport::default();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                let src = std::fs::read_to_string(&path)?;
                report.sites.extend(audit_source(&path, &src));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(src: &str) -> Vec<UnsafeSite> {
        audit_source(Path::new("test.rs"), src)
    }

    #[test]
    fn annotated_block_passes() {
        let sites = audit(
            "fn f(p: *mut f64) {\n\
             \x20   // SAFETY(cert: disjoint-direct): p covers only our rows.\n\
             \x20   unsafe { *p = 1.0; }\n\
             }\n",
        );
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, UnsafeKind::Block);
        assert_eq!(sites[0].invariant.as_deref(), Some("disjoint-direct"));
        assert!(sites[0].violation.is_none());
        assert_eq!(sites[0].line, 3);
    }

    #[test]
    fn unannotated_block_fails() {
        let sites = audit("fn f(p: *mut f64) {\n    unsafe { *p = 1.0; }\n}\n");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].violation, Some(Violation::Unannotated));
    }

    #[test]
    fn unknown_invariant_fails() {
        let sites = audit("// SAFETY(cert: trust-me): it is fine.\nunsafe impl Send for X {}\n");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, UnsafeKind::Impl);
        assert_eq!(
            sites[0].violation,
            Some(Violation::UnknownInvariant("trust-me".to_string()))
        );
    }

    #[test]
    fn unsafe_fn_requires_safety_doc() {
        let bad = audit("pub unsafe fn poke(p: *mut u8) {}\n");
        assert_eq!(bad[0].kind, UnsafeKind::Fn);
        assert_eq!(bad[0].violation, Some(Violation::MissingSafetyDoc));

        let good = audit(
            "/// Pokes.\n///\n/// # Safety\n/// Caller owns `p`.\n\
             pub unsafe fn poke(p: *mut u8) {}\n",
        );
        assert!(good[0].violation.is_none());
    }

    #[test]
    fn keyword_in_strings_and_comments_ignored() {
        let sites = audit(
            "fn f() {\n\
             \x20   let s = \"unsafe { }\";\n\
             \x20   // unsafe in a comment\n\
             \x20   /* unsafe in a block comment */\n\
             \x20   let c = 'u';\n\
             \x20   let r = r#\"unsafe\"#;\n\
             \x20   let _ = (s, c, r);\n\
             }\n",
        );
        assert!(sites.is_empty(), "{sites:?}");
    }

    #[test]
    fn identifier_containing_unsafe_ignored() {
        let sites = audit("fn f() { let not_unsafe_at_all = 1; let unsafely = 2; }\n");
        assert!(sites.is_empty(), "{sites:?}");
    }

    #[test]
    fn annotation_does_not_reach_past_code() {
        // The annotation is separated from the block by a code line, so it
        // must NOT be credited to the block.
        let sites = audit(
            "// SAFETY(cert: disjoint-direct): for the first one.\n\
             fn g() {}\n\
             fn f(p: *mut f64) { unsafe { *p = 1.0; } }\n",
        );
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].violation, Some(Violation::Unannotated));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let sites = audit(
            "fn f<'a>(x: &'a [f64]) -> &'a f64 {\n\
             \x20   // SAFETY(cert: test-only): fixture.\n\
             \x20   unsafe { x.get_unchecked(0) }\n\
             }\n",
        );
        assert_eq!(sites.len(), 1);
        assert!(sites[0].violation.is_none(), "{sites:?}");
    }
}
