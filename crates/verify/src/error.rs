//! The verification error taxonomy.
//!
//! Each variant names one *distinct* way a partition plan can violate the
//! race-freedom obligations of the symmetric kernels; the mutation-kill
//! suite demands that each of its six deliberately-broken plans is rejected
//! with a different variant, so the variants are deliberately fine-grained
//! rather than collapsed into a generic "invalid plan".

/// A plan failed race certification (or a certificate failed validation).
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The row partition leaves a hole: row `at` is owned by no thread, so
    /// its output element would never be written (an off-by-one boundary).
    PartitionGap {
        /// First row not covered by any partition.
        at: u32,
    },
    /// Two threads' direct-write row ranges overlap: row `row` would be
    /// written by both `first` and `second` in the multiply phase.
    OverlappingDirectWrites {
        /// First row claimed by both threads.
        row: u32,
        /// Lower-numbered claiming thread.
        first: usize,
        /// Higher-numbered claiming thread.
        second: usize,
    },
    /// Two threads' local-vector regions overlap in the flat leased store.
    LayoutOverlap {
        /// Lower-numbered thread of the colliding pair.
        first: usize,
        /// Higher-numbered thread of the colliding pair.
        second: usize,
    },
    /// A write of thread `tid` falls outside its declared region — a
    /// transposed write escaping the effective region, or a declared
    /// region escaping the leased store.
    EscapedWrite {
        /// The writing thread.
        tid: usize,
        /// The escaping target (row index or local-store element).
        target: u32,
    },
    /// The conflict index misses a write: thread `tid` writes local row
    /// `idx` in the multiply phase, but no `(tid, idx)` entry exists, so
    /// the indexing reduction would never fold (or re-zero) that element.
    IndexIncomplete {
        /// The writing thread.
        tid: usize,
        /// The conflict row absent from the index.
        idx: u32,
    },
    /// Two reduction slices share an output target: `idx` (an output row,
    /// or an index `idx` value) is folded by both slice `first` and slice
    /// `second` of the reduction phase.
    ReductionSliceOverlap {
        /// The shared output target.
        idx: u32,
        /// Lower-numbered slice.
        first: usize,
        /// Higher-numbered slice.
        second: usize,
    },
    /// Two rows of the same color class write a common target, so running
    /// the class as one parallel round races on `target`.
    ColoringConflict {
        /// The offending color class.
        color: u32,
        /// First row of the colliding pair.
        row_a: u32,
        /// Second row of the colliding pair.
        row_b: u32,
        /// The y element both rows write.
        target: u32,
    },
    /// A CSX-Sym substructure's transposed writes straddle the chunk's
    /// local-vs-direct boundary — the §IV-B legality rule the encoder must
    /// enforce by falling back to delta units.
    StraddlingPattern {
        /// The chunk (thread) owning the stream.
        tid: usize,
        /// Anchor row of the offending unit.
        row: u32,
        /// Anchor column of the offending unit.
        col: u32,
        /// The chunk's local/direct split.
        split: u32,
    },
    /// A cached certificate was presented for a configuration it does not
    /// describe — e.g. reused after renumbering the matrix, or across a
    /// thread-count or strategy switch.
    StaleCertificate {
        /// Which field mismatched (`"fingerprint"`, `"nthreads"`, …).
        field: &'static str,
        /// Value recorded in the certificate.
        expected: u64,
        /// Value of the configuration being dispatched.
        actual: u64,
    },
    /// A block (SpMM) plan asked for a lane count the runtime does not
    /// support — lane-lifting a scalar proof is only sound for the widths
    /// the kernels are written for.
    BadLaneCount {
        /// The rejected lane count.
        lanes: usize,
    },
    /// A block plan's local-store offset for thread `tid` is not the
    /// scalar offset scaled by the lane count, so the lifted write sets
    /// would not tile the block store the way the scalar proof tiles the
    /// scalar store.
    LaneOffsetMismatch {
        /// The thread whose block offset is wrong.
        tid: usize,
        /// `base_offsets[tid] * lanes`, the only sound block offset.
        expected: usize,
        /// The offset the block plan actually declares.
        actual: usize,
    },
    /// A block plan's leased-store length is not the scalar length scaled
    /// by the lane count — the lifted regions would escape (too short) or
    /// leave unproved slack (too long).
    LaneRegionMismatch {
        /// `base_local_len * lanes`, the only sound block store length.
        expected: usize,
        /// The length the block plan actually leases.
        actual: usize,
    },
    /// A symmetry-kind side condition failed: the write-set proof itself is
    /// kind-independent, but reusing it for a skew or structural matrix
    /// requires the storage to honor the kind's contract (zero diagonal
    /// for skew; a full paired upper array for structural).
    KindSideCondition {
        /// The symmetry-kind tag whose contract is violated.
        kind: &'static str,
        /// Human-readable description of the violated condition.
        reason: String,
    },
    /// The plan is structurally malformed (wrong array lengths, unsorted
    /// index, out-of-bounds partition…) — rejected before any write-set
    /// reasoning applies.
    MalformedPlan {
        /// Human-readable description of the defect.
        reason: String,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::PartitionGap { at } => {
                write!(f, "partition gap: row {at} is owned by no thread")
            }
            VerifyError::OverlappingDirectWrites { row, first, second } => write!(
                f,
                "overlapping direct writes: row {row} owned by threads {first} and {second}"
            ),
            VerifyError::LayoutOverlap { first, second } => write!(
                f,
                "local-vector regions of threads {first} and {second} overlap"
            ),
            VerifyError::EscapedWrite { tid, target } => write!(
                f,
                "thread {tid} writes {target} outside its declared region"
            ),
            VerifyError::IndexIncomplete { tid, idx } => write!(
                f,
                "conflict index misses write of thread {tid} to local row {idx}"
            ),
            VerifyError::ReductionSliceOverlap { idx, first, second } => write!(
                f,
                "reduction slices {first} and {second} both fold target {idx}"
            ),
            VerifyError::ColoringConflict {
                color,
                row_a,
                row_b,
                target,
            } => write!(
                f,
                "color class {color}: rows {row_a} and {row_b} both write y[{target}]"
            ),
            VerifyError::StraddlingPattern {
                tid,
                row,
                col,
                split,
            } => write!(
                f,
                "chunk {tid}: substructure at ({row}, {col}) straddles split {split}"
            ),
            VerifyError::StaleCertificate {
                field,
                expected,
                actual,
            } => write!(
                f,
                "stale certificate: {field} recorded as {expected}, dispatching {actual}"
            ),
            VerifyError::BadLaneCount { lanes } => {
                write!(f, "unsupported lane count {lanes} for block lifting")
            }
            VerifyError::LaneOffsetMismatch {
                tid,
                expected,
                actual,
            } => write!(
                f,
                "block offset of thread {tid} is {actual}, lane-scaled proof requires {expected}"
            ),
            VerifyError::LaneRegionMismatch { expected, actual } => write!(
                f,
                "block local store is {actual} elements, lane-scaled proof requires {expected}"
            ),
            VerifyError::KindSideCondition { kind, reason } => {
                write!(f, "{kind} side condition violated: {reason}")
            }
            VerifyError::MalformedPlan { reason } => write!(f, "malformed plan: {reason}"),
        }
    }
}

impl std::error::Error for VerifyError {}
