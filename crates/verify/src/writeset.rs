//! The plan-time write-set model and verifier.
//!
//! Given a partition plan and the matrix *structure* (values never
//! matter), the verifier computes each thread's exact write footprint per
//! phase and proves, by exhaustive symbolic enumeration:
//!
//! * **multiply phase** — direct `y` writes of thread `i` stay inside its
//!   own row range `[start_i, end_i)` and the ranges tile `0..n` exactly
//!   (`disjoint-direct`); transposed writes with `c < start_i` land inside
//!   the thread's declared local region of the flat leased store, and the
//!   declared regions are pairwise disjoint (`effective-region`);
//! * **reduce phase** — every output row (or index slot) is folded by
//!   exactly one thread: the naive/effective row chunks tile `0..n`, and
//!   the indexing splits never let one `idx` value span two slices
//!   (`reduction-slice`); additionally the `(vid, idx)` index *covers*
//!   every conflicting write, since an unindexed local write would never
//!   be folded into `y` — or re-zeroed, breaking the arena lease contract.
//!
//! The proof is returned as a [`RaceCertificate`]; any violated obligation
//! aborts with the [`VerifyError`] variant naming the offending write.

use crate::certificate::{ProofForm, RaceCertificate};
use crate::error::VerifyError;
use symspmv_runtime::reduction::IndexEntry;
use symspmv_runtime::Range;
use symspmv_sparse::symmetry::SymmetryKind;
use symspmv_sparse::SssMatrix;

/// Which of the three Fig. 3 reduction families the plan drives.
///
/// The verifier needs only the family, not the strategy object: the family
/// fixes the local-vector layout shape (full-length vs effective regions)
/// and which reduce-phase obligation applies (row chunks vs index slices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymStrategyKind {
    /// Full-length `p·N` local vectors, all writes local (Fig. 3b).
    Naive,
    /// Direct writes plus effective-region locals, row-chunk reduce
    /// (Fig. 3c).
    EffectiveRanges,
    /// Direct writes plus effective-region locals, `(vid, idx)` indexed
    /// reduce (Fig. 3d, §III-C).
    Indexing,
}

impl SymStrategyKind {
    /// Maps a reduction-strategy registry tag to its family.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "naive" => Some(SymStrategyKind::Naive),
            "eff" => Some(SymStrategyKind::EffectiveRanges),
            "idx" => Some(SymStrategyKind::Indexing),
            _ => None,
        }
    }

    fn direct_write(self) -> bool {
        !matches!(self, SymStrategyKind::Naive)
    }
}

/// A borrowed view of everything a symmetric-kernel plan commits to.
///
/// This is exactly the data `SymSpmv` dispatches with; the verifier treats
/// it as an untrusted claim and re-derives the write sets from the matrix
/// structure.
#[derive(Debug, Clone, Copy)]
pub struct SymPlanRef<'a> {
    /// Per-thread row partitions (must tile `0..n`).
    pub parts: &'a [Range],
    /// Per-thread offsets into the flat leased local store.
    pub offsets: &'a [usize],
    /// Total length of the flat leased local store.
    pub local_len: usize,
    /// The reduction family the layout and reduce phase follow.
    pub strategy: SymStrategyKind,
    /// The `(vid, idx)` conflict index (indexing family; empty otherwise).
    pub entries: &'a [IndexEntry],
    /// Reduction split boundaries into `entries` (`nthreads + 1` values).
    pub splits: &'a [usize],
    /// Row chunks of the naive/effective reduce phase.
    pub row_chunks: &'a [Range],
}

/// Verifies that `ranges` tile `0..n` contiguously: no gap (a row no
/// thread owns) and no overlap (a row two threads own). Empty trailing
/// ranges are legal.
pub(crate) fn check_tiling(ranges: &[Range], n: u32) -> Result<(), VerifyError> {
    if ranges.is_empty() {
        return Err(VerifyError::MalformedPlan {
            reason: "empty partition list".to_string(),
        });
    }
    let mut cursor: u32 = 0;
    for (i, r) in ranges.iter().enumerate() {
        if r.start > r.end || r.end > n {
            return Err(VerifyError::MalformedPlan {
                reason: format!(
                    "partition {i} [{}, {}) out of bounds (n = {n})",
                    r.start, r.end
                ),
            });
        }
        if r.is_empty() {
            continue;
        }
        match r.start.cmp(&cursor) {
            std::cmp::Ordering::Greater => return Err(VerifyError::PartitionGap { at: cursor }),
            std::cmp::Ordering::Less => {
                // Find the earlier partition that owns r.start.
                let first = ranges[..i]
                    .iter()
                    .position(|q| !q.is_empty() && q.start <= r.start && r.start < q.end)
                    .unwrap_or(0);
                return Err(VerifyError::OverlappingDirectWrites {
                    row: r.start,
                    first,
                    second: i,
                });
            }
            std::cmp::Ordering::Equal => cursor = r.end,
        }
    }
    if cursor < n {
        return Err(VerifyError::PartitionGap { at: cursor });
    }
    Ok(())
}

/// Verifies the local-vector layout: each thread's declared region
/// `[offsets[i], offsets[i] + region_len(i))` must lie inside the leased
/// store and the regions must be pairwise disjoint.
pub(crate) fn check_layout(
    plan: &SymPlanRef<'_>,
    region_len: impl Fn(usize) -> usize,
) -> Result<(), VerifyError> {
    let p = plan.parts.len();
    if plan.offsets.len() != p {
        return Err(VerifyError::MalformedPlan {
            reason: format!("{} offsets for {p} threads", plan.offsets.len()),
        });
    }
    let mut regions: Vec<(usize, usize, usize)> = (0..p)
        .map(|i| (plan.offsets[i], plan.offsets[i] + region_len(i), i))
        .collect();
    for &(_, end, tid) in &regions {
        if end > plan.local_len {
            return Err(VerifyError::EscapedWrite {
                tid,
                target: end.saturating_sub(1) as u32,
            });
        }
    }
    regions.sort_unstable();
    for w in regions.windows(2) {
        let (_, prev_end, prev_tid) = w[0];
        let (next_start, next_end, next_tid) = w[1];
        if next_start < prev_end && next_start < next_end && prev_end > 0 {
            return Err(VerifyError::LayoutOverlap {
                first: prev_tid.min(next_tid),
                second: prev_tid.max(next_tid),
            });
        }
    }
    Ok(())
}

/// Walks the structure and returns per-thread sorted distinct conflict
/// columns (transposed targets `c < start_i`) — the verifier's own
/// re-derivation of the symbolic analysis, kept independent of
/// `symspmv-core` so the two implementations cross-check each other.
fn conflict_sets(sss: &SssMatrix, parts: &[Range]) -> Vec<Vec<u32>> {
    let n = sss.n() as usize;
    let mut seen = vec![false; n];
    let mut out: Vec<Vec<u32>> = Vec::with_capacity(parts.len());
    for part in parts {
        let split = part.start;
        let mut mine = Vec::new();
        if split > 0 {
            for r in part.start..part.end {
                let (cols, _) = sss.row(r);
                for &c in cols {
                    if c < split && !seen[c as usize] {
                        seen[c as usize] = true;
                        mine.push(c);
                    }
                }
            }
            mine.sort_unstable();
            for &c in &mine {
                seen[c as usize] = false;
            }
        }
        out.push(mine);
    }
    out
}

/// Certifies a symmetric-SpMV plan (SSS or CSX-Sym storage — the write
/// sets depend on the partition and structure only, not on the encoding;
/// the encoding-specific boundary rule is certified separately by
/// [`crate::csx_check::certify_csx_chunks`]).
pub fn certify_sym(sss: &SssMatrix, plan: &SymPlanRef<'_>) -> Result<RaceCertificate, VerifyError> {
    let n = sss.n();
    let p = plan.parts.len();
    check_tiling(plan.parts, n)?;

    let direct = plan.strategy.direct_write();
    let region_len = |i: usize| -> usize {
        if direct {
            plan.parts[i].start as usize
        } else {
            n as usize
        }
    };
    check_layout(plan, region_len)?;

    // Multiply phase: enumerate every write the structure implies.
    //
    // Direct families: thread i writes y[r] for r in its part and
    // y[c] for transposed targets c ∈ [start_i, r) — both inside
    // [start_i, end_i) by construction of SSS (strict lower triangle,
    // c < r < end_i), which check_tiling has just proved disjoint across
    // threads. Transposed targets c < start_i go to the local region,
    // whose size is exactly start_i, so containment holds iff the target
    // is a legal column (c < start_i ⇒ slot offsets[i] + c inside the
    // declared region). The enumeration below re-checks both bounds
    // rather than trusting the construction argument.
    let conflicts = conflict_sets(sss, plan.parts);
    for (i, part) in plan.parts.iter().enumerate() {
        let split = part.start;
        for r in part.start..part.end {
            let (cols, _) = sss.row(r);
            for &c in cols {
                if direct && c >= split {
                    // Direct transposed write: must stay in our own rows.
                    if c >= part.end {
                        return Err(VerifyError::EscapedWrite { tid: i, target: c });
                    }
                } else {
                    // Local write at slot offsets[i] + c: region holds
                    // region_len(i) elements.
                    if (c as usize) >= region_len(i) {
                        return Err(VerifyError::EscapedWrite { tid: i, target: c });
                    }
                }
            }
        }
    }

    // Reduce phase.
    match plan.strategy {
        SymStrategyKind::Naive | SymStrategyKind::EffectiveRanges => {
            // Row-chunk reduce: every y row folded by exactly one thread.
            match check_tiling(plan.row_chunks, n) {
                Ok(()) => {}
                Err(VerifyError::OverlappingDirectWrites { row, first, second }) => {
                    return Err(VerifyError::ReductionSliceOverlap {
                        idx: row,
                        first,
                        second,
                    })
                }
                Err(e) => return Err(e),
            }
        }
        SymStrategyKind::Indexing => {
            check_index(plan, &conflicts)?;
        }
    }

    let mut invariants = vec![
        "reduction-slice".to_string(),
        "effective-region".to_string(),
    ];
    if direct {
        invariants.insert(0, "disjoint-direct".to_string());
    }
    // Kind side conditions. The write sets proved above are pure structure
    // — identical for every symmetry kind — so the proof transfers to skew
    // and structural matrices provided the storage honors the kind's
    // contract; check it here rather than trusting the constructor.
    match sss.kind() {
        SymmetryKind::Symmetric => {}
        SymmetryKind::Skew => {
            if let Some(r) = sss.dvalues().iter().position(|&d| d != 0.0) {
                return Err(VerifyError::KindSideCondition {
                    kind: "skew",
                    reason: format!("diagonal entry {r} is {}, must be zero", sss.dvalues()[r]),
                });
            }
            invariants.push("skew-zero-diagonal".to_string());
        }
        SymmetryKind::Structural => {
            if sss.upper_values().len() != sss.lower_nnz() {
                return Err(VerifyError::KindSideCondition {
                    kind: "structural",
                    reason: format!(
                        "paired upper array has {} values for {} lower entries",
                        sss.upper_values().len(),
                        sss.lower_nnz()
                    ),
                });
            }
            invariants.push("structural-paired".to_string());
        }
    }
    let conflict_entries = if plan.strategy == SymStrategyKind::Indexing {
        plan.entries.len()
    } else {
        conflicts.iter().map(Vec::len).sum()
    };
    Ok(RaceCertificate {
        fingerprint: sss.fingerprint(),
        n: n as usize,
        nthreads: p,
        family: "sym-sss".to_string(),
        strategy: match plan.strategy {
            SymStrategyKind::Naive => "naive",
            SymStrategyKind::EffectiveRanges => "eff",
            SymStrategyKind::Indexing => "idx",
        }
        .to_string(),
        symmetry: sss.kind().tag().to_string(),
        invariants,
        direct_rows: if direct { n as usize } else { 0 },
        local_elems: if direct {
            plan.parts.iter().map(|r| r.start as usize).sum()
        } else {
            p * n as usize
        },
        conflict_entries,
        lanes: 1,
        proof: ProofForm::Enumerative,
    })
}

/// Lifts a scalar symmetric-plan certificate to a `lanes`-wide block
/// (SpMM) certificate.
///
/// A row conflict is lane-independent: the block kernels write element
/// `(row, lane)` at slot `row·lanes + lane`, so thread `i`'s scalar write
/// set `W_i` becomes exactly `{ w·lanes + j : w ∈ W_i, j < lanes }`. Two
/// lifted sets intersect iff the scalar sets intersect — disjointness (and
/// therefore every race-freedom invariant of `base`) lifts verbatim,
/// *provided* the block plan really is the scalar plan scaled: each block
/// offset must be the scalar offset times `lanes`, and the block store
/// must be the scalar store times `lanes`. This function checks those side
/// conditions and returns a certificate carrying the extra `lane-lifted`
/// invariant; it does not re-enumerate the structure.
pub fn lift_sym_certificate(
    base: &RaceCertificate,
    lanes: usize,
    base_offsets: &[usize],
    base_local_len: usize,
    block_offsets: &[usize],
    block_local_len: usize,
) -> Result<RaceCertificate, VerifyError> {
    if !symspmv_sparse::block::SUPPORTED_LANES.contains(&lanes) {
        return Err(VerifyError::BadLaneCount { lanes });
    }
    if base.lanes != 1 {
        return Err(VerifyError::MalformedPlan {
            reason: format!("cannot lift a certificate already at {} lanes", base.lanes),
        });
    }
    if block_offsets.len() != base_offsets.len() {
        return Err(VerifyError::MalformedPlan {
            reason: format!(
                "{} block offsets for {} scalar offsets",
                block_offsets.len(),
                base_offsets.len()
            ),
        });
    }
    for (tid, (&b, &s)) in block_offsets.iter().zip(base_offsets).enumerate() {
        if b != s * lanes {
            return Err(VerifyError::LaneOffsetMismatch {
                tid,
                expected: s * lanes,
                actual: b,
            });
        }
    }
    if block_local_len != base_local_len * lanes {
        return Err(VerifyError::LaneRegionMismatch {
            expected: base_local_len * lanes,
            actual: block_local_len,
        });
    }
    let mut cert = base.clone();
    cert.lanes = lanes;
    cert.local_elems = base.local_elems * lanes;
    cert.conflict_entries = base.conflict_entries * lanes;
    if !cert.proves("lane-lifted") {
        cert.invariants.push("lane-lifted".to_string());
    }
    Ok(cert)
}

/// Verifies the `(vid, idx)` index and its reduction splits against the
/// independently re-derived conflict sets.
fn check_index(plan: &SymPlanRef<'_>, conflicts: &[Vec<u32>]) -> Result<(), VerifyError> {
    let p = plan.parts.len();
    let entries = plan.entries;
    let splits = plan.splits;
    if splits.len() != p + 1 {
        return Err(VerifyError::MalformedPlan {
            reason: format!("{} splits for {p} threads", splits.len()),
        });
    }
    if splits[0] != 0 || splits[p] != entries.len() || splits.windows(2).any(|w| w[0] > w[1]) {
        return Err(VerifyError::MalformedPlan {
            reason: format!("splits {splits:?} do not cover {} entries", entries.len()),
        });
    }
    // Sorted by (idx, vid), no duplicates.
    for w in entries.windows(2) {
        if (w[1].idx, w[1].vid) <= (w[0].idx, w[0].vid) {
            return Err(VerifyError::MalformedPlan {
                reason: format!(
                    "index not strictly sorted at ({}, {}) / ({}, {})",
                    w[0].idx, w[0].vid, w[1].idx, w[1].vid
                ),
            });
        }
    }
    // No idx value spans two slices: the slice folding idx also re-zeroes
    // the local slots, so a shared idx means two threads write y[idx] (and
    // possibly the same local slot) in one round.
    for (k, &b) in splits.iter().enumerate().take(p).skip(1) {
        if b > 0 && b < entries.len() && entries[b - 1].idx == entries[b].idx {
            return Err(VerifyError::ReductionSliceOverlap {
                idx: entries[b].idx,
                first: k - 1,
                second: k,
            });
        }
    }
    // Every entry names a real thread and stays inside its effective
    // region; every conflicting write is covered by an entry.
    for e in entries {
        let vid = e.vid as usize;
        if vid >= p {
            return Err(VerifyError::MalformedPlan {
                reason: format!("entry names thread {vid} of {p}"),
            });
        }
        if e.idx >= plan.parts[vid].start {
            return Err(VerifyError::EscapedWrite {
                tid: vid,
                target: e.idx,
            });
        }
    }
    let mut per_vid: Vec<Vec<u32>> = vec![Vec::new(); p];
    for e in entries {
        per_vid[e.vid as usize].push(e.idx);
    }
    for v in &mut per_vid {
        v.sort_unstable();
    }
    for (tid, need) in conflicts.iter().enumerate() {
        for &c in need {
            if per_vid[tid].binary_search(&c).is_err() {
                return Err(VerifyError::IndexIncomplete { tid, idx: c });
            }
        }
    }
    Ok(())
}

/// Certifies a plain row-partitioned kernel (CSR, CSX, BCSR block rows,
/// CSB phases): the only obligation is that the partitions tile the output
/// disjointly.
pub fn certify_rows(
    fingerprint: u64,
    n: u32,
    parts: &[Range],
    family: &str,
) -> Result<RaceCertificate, VerifyError> {
    check_tiling(parts, n)?;
    Ok(RaceCertificate {
        fingerprint,
        n: n as usize,
        nthreads: parts.len(),
        family: family.to_string(),
        strategy: String::new(),
        symmetry: "none".to_string(),
        invariants: vec!["disjoint-direct".to_string()],
        direct_rows: n as usize,
        local_elems: 0,
        conflict_entries: 0,
        lanes: 1,
        proof: ProofForm::Enumerative,
    })
}

/// Certifies a greedy coloring for `SssColorParallel`: the classes must
/// partition the rows, and no two rows of one class may share a write
/// target (`{r} ∪ cols(r)` pairwise disjoint within the class) — RACE's
/// condition for running a class as one barrier-free parallel round.
pub fn certify_color(
    sss: &SssMatrix,
    classes: &[Vec<u32>],
) -> Result<RaceCertificate, VerifyError> {
    let n = sss.n() as usize;
    let mut owner_class = vec![u32::MAX; n];
    for (color, rows) in classes.iter().enumerate() {
        for &r in rows {
            if (r as usize) >= n {
                return Err(VerifyError::MalformedPlan {
                    reason: format!("class {color} names row {r} of {n}"),
                });
            }
            if owner_class[r as usize] != u32::MAX {
                return Err(VerifyError::MalformedPlan {
                    reason: format!("row {r} in classes {} and {color}", owner_class[r as usize]),
                });
            }
            owner_class[r as usize] = color as u32;
        }
    }
    if let Some(r) = owner_class.iter().position(|&c| c == u32::MAX) {
        return Err(VerifyError::MalformedPlan {
            reason: format!("row {r} belongs to no color class"),
        });
    }

    // Per class: stamp each write target with the row that claimed it.
    let mut claimed_by = vec![u32::MAX; n];
    let mut epoch = vec![u32::MAX; n];
    for (color, rows) in classes.iter().enumerate() {
        for &r in rows {
            let (cols, _) = sss.row(r);
            for target in cols.iter().copied().chain(std::iter::once(r)) {
                let t = target as usize;
                if epoch[t] == color as u32 && claimed_by[t] != r {
                    return Err(VerifyError::ColoringConflict {
                        color: color as u32,
                        row_a: claimed_by[t],
                        row_b: r,
                        target,
                    });
                }
                epoch[t] = color as u32;
                claimed_by[t] = r;
            }
        }
    }
    Ok(RaceCertificate {
        fingerprint: sss.fingerprint(),
        n,
        nthreads: 0,
        family: "sym-color".to_string(),
        strategy: String::new(),
        symmetry: sss.kind().tag().to_string(),
        invariants: vec!["color-class".to_string(), "disjoint-direct".to_string()],
        direct_rows: n,
        local_elems: 0,
        conflict_entries: classes.len(),
        lanes: 1,
        proof: ProofForm::Enumerative,
    })
}

/// Certifies a RACE schedule for the reduction-free symmetric kernel by
/// exhaustive write-set enumeration: the groups must partition the rows, no
/// two rows of one group may share a write target (`{r} ∪ cols(r)` pairwise
/// disjoint within the group — distance-2 disjointness of the scheduled
/// rows), and every group's per-thread parts must tile its row list so the
/// barriered rounds cover each row exactly once. The certificate carries a
/// [`ProofForm::ColoringDisjoint`] proof and validates for the `"sym-sss"`
/// family under strategy `"race"`.
pub fn certify_race(
    sss: &SssMatrix,
    groups: &[Vec<u32>],
    group_parts: &[Vec<Range>],
    nthreads: usize,
) -> Result<RaceCertificate, VerifyError> {
    let n = sss.n() as usize;
    let mut owner_group = vec![u32::MAX; n];
    for (gid, rows) in groups.iter().enumerate() {
        for &r in rows {
            if (r as usize) >= n {
                return Err(VerifyError::MalformedPlan {
                    reason: format!("group {gid} names row {r} of {n}"),
                });
            }
            if owner_group[r as usize] != u32::MAX {
                return Err(VerifyError::MalformedPlan {
                    reason: format!("row {r} in groups {} and {gid}", owner_group[r as usize]),
                });
            }
            owner_group[r as usize] = gid as u32;
        }
    }
    if let Some(r) = owner_group.iter().position(|&g| g == u32::MAX) {
        return Err(VerifyError::MalformedPlan {
            reason: format!("row {r} belongs to no group"),
        });
    }

    // Per group: stamp each write target with the row that claimed it.
    let mut claimed_by = vec![u32::MAX; n];
    let mut epoch = vec![u32::MAX; n];
    for (gid, rows) in groups.iter().enumerate() {
        for &r in rows {
            let (cols, _) = sss.row(r);
            for target in cols.iter().copied().chain(std::iter::once(r)) {
                let t = target as usize;
                if epoch[t] == gid as u32 && claimed_by[t] != r {
                    return Err(VerifyError::ColoringConflict {
                        color: gid as u32,
                        row_a: claimed_by[t],
                        row_b: r,
                        target,
                    });
                }
                epoch[t] = gid as u32;
                claimed_by[t] = r;
            }
        }
    }

    // The barriered rounds: each group's parts must tile its row list.
    if group_parts.len() != groups.len() {
        return Err(VerifyError::MalformedPlan {
            reason: format!(
                "{} part lists for {} groups",
                group_parts.len(),
                groups.len()
            ),
        });
    }
    for (gid, (rows, parts)) in groups.iter().zip(group_parts).enumerate() {
        if parts.len() != nthreads {
            return Err(VerifyError::MalformedPlan {
                reason: format!(
                    "group {gid} has {} parts for {nthreads} threads",
                    parts.len()
                ),
            });
        }
        check_tiling(parts, rows.len() as u32)?;
    }

    let mut invariants = vec!["color-class".to_string(), "disjoint-direct".to_string()];
    match sss.kind() {
        SymmetryKind::Symmetric => {}
        SymmetryKind::Skew => {
            if let Some(r) = sss.dvalues().iter().position(|&d| d != 0.0) {
                return Err(VerifyError::KindSideCondition {
                    kind: "skew",
                    reason: format!("diagonal entry {r} is {}, must be zero", sss.dvalues()[r]),
                });
            }
            invariants.push("skew-zero-diagonal".to_string());
        }
        SymmetryKind::Structural => {
            if sss.upper_values().len() != sss.lower_nnz() {
                return Err(VerifyError::KindSideCondition {
                    kind: "structural",
                    reason: format!(
                        "paired upper array has {} values for {} lower entries",
                        sss.upper_values().len(),
                        sss.lower_nnz()
                    ),
                });
            }
            invariants.push("structural-paired".to_string());
        }
    }
    Ok(RaceCertificate {
        fingerprint: sss.fingerprint(),
        n,
        nthreads,
        family: "sym-sss".to_string(),
        strategy: "race".to_string(),
        symmetry: sss.kind().tag().to_string(),
        invariants,
        direct_rows: n,
        local_elems: 0,
        conflict_entries: groups.len(),
        lanes: 1,
        proof: ProofForm::ColoringDisjoint {
            stride: groups.len() as u32,
            reach: 2,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::CooMatrix;

    fn sss(entries: &[(u32, u32)], n: u32) -> SssMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
        }
        for &(r, c) in entries {
            coo.push(r, c, -1.0);
            coo.push(c, r, -1.0);
        }
        SssMatrix::from_coo(&coo, 0.0).unwrap()
    }

    fn eff_plan(parts: &[Range]) -> (Vec<usize>, usize) {
        let mut offsets = Vec::with_capacity(parts.len());
        let mut acc = 0usize;
        for p in parts {
            offsets.push(acc);
            acc += p.start as usize;
        }
        (offsets, acc)
    }

    #[test]
    fn tiling_violations_classified() {
        assert_eq!(
            check_tiling(&[Range { start: 0, end: 4 }, Range { start: 5, end: 8 }], 8),
            Err(VerifyError::PartitionGap { at: 4 })
        );
        assert_eq!(
            check_tiling(&[Range { start: 0, end: 5 }, Range { start: 4, end: 8 }], 8),
            Err(VerifyError::OverlappingDirectWrites {
                row: 4,
                first: 0,
                second: 1
            })
        );
        assert_eq!(
            check_tiling(&[Range { start: 0, end: 8 }], 9),
            Err(VerifyError::PartitionGap { at: 8 })
        );
        assert!(check_tiling(
            &[
                Range { start: 0, end: 8 },
                Range { start: 8, end: 8 } // empty trailing partition
            ],
            8
        )
        .is_ok());
    }

    #[test]
    fn good_eff_plan_certifies() {
        let m = sss(&[(5, 1), (6, 2), (7, 3)], 8);
        let parts = [Range { start: 0, end: 4 }, Range { start: 4, end: 8 }];
        let (offsets, local_len) = eff_plan(&parts);
        let chunks = [Range { start: 0, end: 4 }, Range { start: 4, end: 8 }];
        let cert = certify_sym(
            &m,
            &SymPlanRef {
                parts: &parts,
                offsets: &offsets,
                local_len,
                strategy: SymStrategyKind::EffectiveRanges,
                entries: &[],
                splits: &[],
                row_chunks: &chunks,
            },
        )
        .unwrap();
        assert_eq!(cert.local_elems, 4);
        assert_eq!(cert.conflict_entries, 3);
        assert!(cert.proves("disjoint-direct"));
        assert_eq!(cert.fingerprint, m.fingerprint());
    }

    #[test]
    fn overlapping_layout_rejected() {
        let m = sss(&[(5, 1)], 8);
        let parts = [
            Range { start: 0, end: 3 },
            Range { start: 3, end: 6 },
            Range { start: 6, end: 8 },
        ];
        // Threads 1 and 2 need regions of 3 and 6 elements, but both are
        // placed at offset 0 of the leased store.
        let err = certify_sym(
            &m,
            &SymPlanRef {
                parts: &parts,
                offsets: &[0, 0, 0],
                local_len: 9,
                strategy: SymStrategyKind::EffectiveRanges,
                entries: &[],
                splits: &[],
                row_chunks: &parts,
            },
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::LayoutOverlap { .. }), "{err:?}");
    }

    #[test]
    fn incomplete_index_rejected() {
        let m = sss(&[(5, 1), (6, 2)], 8);
        let parts = [Range { start: 0, end: 4 }, Range { start: 4, end: 8 }];
        let (offsets, local_len) = eff_plan(&parts);
        // Index only covers idx 1; the write to local row 2 is missing.
        let entries = [IndexEntry { vid: 1, idx: 1 }];
        let err = certify_sym(
            &m,
            &SymPlanRef {
                parts: &parts,
                offsets: &offsets,
                local_len,
                strategy: SymStrategyKind::Indexing,
                entries: &entries,
                splits: &[0, 1, 1],
                row_chunks: &[],
            },
        )
        .unwrap_err();
        assert_eq!(err, VerifyError::IndexIncomplete { tid: 1, idx: 2 });
    }

    #[test]
    fn coloring_conflicts_detected() {
        let m = sss(&[(1, 0), (2, 1)], 3);
        // Rows 0 and 1 couple; same class → conflict on target 0 (or 1).
        let err = certify_color(&m, &[vec![0, 1], vec![2]]).unwrap_err();
        assert!(
            matches!(err, VerifyError::ColoringConflict { .. }),
            "{err:?}"
        );
        // Proper coloring passes.
        let cert = certify_color(&m, &[vec![0, 2], vec![1]]).unwrap();
        assert!(cert.proves("color-class"));
        // A row in no class is malformed, not a race.
        assert!(matches!(
            certify_color(&m, &[vec![0], vec![1]]),
            Err(VerifyError::MalformedPlan { .. })
        ));
    }

    #[test]
    fn rows_certificate_requires_tiling() {
        assert!(certify_rows(7, 10, &[Range { start: 0, end: 10 }], "rows").is_ok());
        assert_eq!(
            certify_rows(
                7,
                10,
                &[Range { start: 0, end: 4 }, Range { start: 6, end: 10 }],
                "rows"
            ),
            Err(VerifyError::PartitionGap { at: 4 })
        );
    }
}
