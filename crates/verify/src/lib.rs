#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! Race certification for the symmetric SpMV kernels.
//!
//! The paper's symmetric kernels are race-free *by construction* — the
//! local-vectors method gives every thread a private landing zone for
//! transposed writes, and the reduction phase re-partitions the fold so no
//! output element is touched twice (§III). This crate turns that
//! construction argument into a machine-checked artifact, in three layers:
//!
//! 1. **Plan-time write-set verifier** ([`writeset`], [`csx_check`]) —
//!    computes each thread's exact write footprint per phase from the
//!    matrix structure and the partition plan, and proves disjointness,
//!    containment and coverage. The proof is a serializable
//!    [`RaceCertificate`] that `ExecutionContext` memoizes per
//!    (matrix fingerprint, nthreads, strategy) and kernels re-validate in
//!    debug builds before every dispatch.
//! 2. **Shadow-memory race detector** (`symspmv-runtime`'s `race` module,
//!    behind the `race-detector` feature) — dynamic cross-validation: the
//!    same corrupted plans the verifier rejects must also produce observed
//!    write-write collisions when actually dispatched.
//! 3. **Symbolic plan certifier** ([`symbolic`]) — re-derives the same
//!    certificates from an interval/congruence abstract domain plus
//!    structure axioms in `O(p + c)` instead of `O(nnz)`, pinned
//!    bit-for-bit against the enumerative checker by a differential
//!    suite, and adds the [`certificate::ProofForm::ColoringDisjoint`]
//!    spacing proof for cyclic colorings.
//! 4. **Shadow-memory race detector** (`symspmv-runtime`'s `race` module,
//!    behind the `race-detector` feature) — dynamic cross-validation: the
//!    same corrupted plans the verifier rejects must also produce observed
//!    write-write collisions when actually dispatched.
//! 5. **Multi-rule lint engine** ([`rules`], [`audit`]) — token-level
//!    static checks over the workspace source: every `unsafe` block must
//!    carry a `SAFETY(cert: <invariant>)` comment naming an invariant the
//!    verifier establishes ([`audit::KNOWN_INVARIANTS`]), every pool-round
//!    loop must hit a supervision checkpoint, locks must follow the
//!    pool-before-health order, and every `Ordering::Relaxed` must justify
//!    itself with a `RELAXED(reason)` annotation.

pub mod audit;
pub mod certificate;
pub mod csx_check;
pub mod error;
pub mod jsonio;
pub mod rules;
pub mod symbolic;
pub mod writeset;

pub use certificate::{ProofForm, RaceCertificate};
pub use csx_check::{certify_csx_chunk, certify_csx_chunks};
pub use error::VerifyError;
pub use rules::{default_rules, run_rules, Finding, LintRule};
pub use symbolic::{
    certify_color_symbolic, certify_race_symbolic, certify_rows_symbolic, certify_sym_symbolic,
    lift_symbolic, stride_classes, ColoringFacts, StructureFacts,
};
pub use writeset::{
    certify_color, certify_race, certify_rows, certify_sym, lift_sym_certificate, SymPlanRef,
    SymStrategyKind,
};
