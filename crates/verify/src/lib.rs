#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! Race certification for the symmetric SpMV kernels.
//!
//! The paper's symmetric kernels are race-free *by construction* — the
//! local-vectors method gives every thread a private landing zone for
//! transposed writes, and the reduction phase re-partitions the fold so no
//! output element is touched twice (§III). This crate turns that
//! construction argument into a machine-checked artifact, in three layers:
//!
//! 1. **Plan-time write-set verifier** ([`writeset`], [`csx_check`]) —
//!    computes each thread's exact write footprint per phase from the
//!    matrix structure and the partition plan, and proves disjointness,
//!    containment and coverage. The proof is a serializable
//!    [`RaceCertificate`] that `ExecutionContext` memoizes per
//!    (matrix fingerprint, nthreads, strategy) and kernels re-validate in
//!    debug builds before every dispatch.
//! 2. **Shadow-memory race detector** (`symspmv-runtime`'s `race` module,
//!    behind the `race-detector` feature) — dynamic cross-validation: the
//!    same corrupted plans the verifier rejects must also produce observed
//!    write-write collisions when actually dispatched.
//! 3. **Unsafe-audit lint** ([`audit`]) — every `unsafe` block in the
//!    workspace must carry a `SAFETY(cert: <invariant>)` comment naming
//!    one of the invariants the verifier establishes
//!    ([`audit::KNOWN_INVARIANTS`]), closing the loop between the proofs
//!    and the code that relies on them.

pub mod audit;
pub mod certificate;
pub mod csx_check;
pub mod error;
pub mod writeset;

pub use certificate::RaceCertificate;
pub use csx_check::{certify_csx_chunk, certify_csx_chunks};
pub use error::VerifyError;
pub use writeset::{
    certify_color, certify_rows, certify_sym, lift_sym_certificate, SymPlanRef, SymStrategyKind,
};
