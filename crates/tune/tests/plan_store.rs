//! Plan-store round-trip and failure-policy properties (ISSUE 9):
//! key mismatches fall back to the cost model, a version bump makes the
//! store invisible, corrupted JSON is a typed `SymSpmvError` (never a
//! panic), and two tune runs on one seed pick the same plan.

use std::path::PathBuf;
use symspmv_core::auto::{PlanSource, PlanSpec};
use symspmv_core::{ReductionMethod, SymSpmv, SymSpmvError};
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::gen;
use symspmv_tune::{
    tune_and_store, tune_matrix, ModelMeasurer, PlanStore, TuneOptions, PLAN_STORE_FILE,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("symspmv-plan-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> TuneOptions {
    TuneOptions {
        thread_counts: vec![1, 2],
        lanes: vec![1, 4],
        samples: 3,
        iterations: 2,
        prune_factor: 1.6,
        min_keep: 12,
        seed: 0xA11CE,
    }
}

#[test]
fn round_trip_preserves_the_stored_plan() {
    let dir = tmp_dir("roundtrip");
    let coo = gen::laplacian_2d(16, 16);
    let mut store = PlanStore::open_for_machine(&dir, "cpu-A".into(), 2).unwrap();
    let (outcome, hit) = tune_and_store(&coo, &mut store, &opts(), &mut ModelMeasurer).unwrap();
    assert!(!hit, "first run must measure");
    assert!(outcome.measured >= 12);

    let reloaded = PlanStore::open_for_machine(&dir, "cpu-A".into(), 2).unwrap();
    assert_eq!(reloaded.len(), 1);
    let stored = reloaded.get(outcome.fingerprint).expect("plan persisted");
    assert_eq!(*stored, outcome.winner, "JSON round-trip must be lossless");

    // Second run: store hit, no re-measurement, same plan.
    let mut store2 = PlanStore::open_for_machine(&dir, "cpu-A".into(), 2).unwrap();
    let (again, hit2) = tune_and_store(&coo, &mut store2, &opts(), &mut ModelMeasurer).unwrap();
    assert!(hit2, "second run must hit the store");
    assert_eq!(again.measured, 0, "a store hit must not re-measure");
    assert_eq!(again.winner, outcome.winner);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn key_mismatch_falls_back_to_the_cost_model() {
    let dir = tmp_dir("keymismatch");
    let coo = gen::laplacian_2d(14, 14);
    let mut store = PlanStore::open_for_machine(&dir, "cpu-A".into(), 2).unwrap();
    let (outcome, _) = tune_and_store(&coo, &mut store, &opts(), &mut ModelMeasurer).unwrap();

    // Different machine model, different ncpus, different fingerprint:
    // each alone must miss.
    let other_machine = PlanStore::open_for_machine(&dir, "cpu-B".into(), 2).unwrap();
    assert!(other_machine.get(outcome.fingerprint).is_none());
    let other_ncpus = PlanStore::open_for_machine(&dir, "cpu-A".into(), 4).unwrap();
    assert!(other_ncpus.get(outcome.fingerprint).is_none());
    let same = PlanStore::open_for_machine(&dir, "cpu-A".into(), 2).unwrap();
    assert!(same.get(outcome.fingerprint ^ 1).is_none());
    assert!(same.get(outcome.fingerprint).is_some());

    // Through the engine: a mismatching advisor means the cost model
    // decides (and the build still succeeds).
    let ctx = ExecutionContext::new(2);
    let (_, choice) = SymSpmv::auto_with(&ctx, &coo, Some(&other_machine)).unwrap();
    assert_eq!(choice.source, PlanSource::CostModel);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stored_plan_is_served_through_the_advisor() {
    let dir = tmp_dir("advisor");
    let coo = gen::laplacian_2d(14, 14);
    let mut store = PlanStore::open_for_machine(&dir, "cpu-A".into(), 2).unwrap();
    let (outcome, _) = tune_and_store(&coo, &mut store, &opts(), &mut ModelMeasurer).unwrap();

    let ctx = ExecutionContext::new(outcome.winner.spec.nthreads);
    let (_, choice) = SymSpmv::auto_with(&ctx, &coo, Some(&store)).unwrap();
    assert_eq!(choice.source, PlanSource::Store);
    assert_eq!(choice.spec, outcome.winner.spec);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_bump_makes_the_store_invisible() {
    let dir = tmp_dir("version");
    let coo = gen::laplacian_2d(14, 14);
    let mut store = PlanStore::open_for_machine(&dir, "cpu-A".into(), 2).unwrap();
    let (outcome, _) = tune_and_store(&coo, &mut store, &opts(), &mut ModelMeasurer).unwrap();

    // Rewrite the file under a future schema version.
    let path = dir.join(PLAN_STORE_FILE);
    let text = std::fs::read_to_string(&path).unwrap();
    let bumped = text.replacen("\"version\":1", "\"version\":999", 1);
    assert_ne!(text, bumped, "test must actually bump the version");
    std::fs::write(&path, bumped).unwrap();

    let reloaded = PlanStore::open_for_machine(&dir, "cpu-A".into(), 2).unwrap();
    assert!(reloaded.ignored_version_mismatch());
    assert!(
        reloaded.is_empty(),
        "a future schema must be ignored, not parsed"
    );
    assert!(reloaded.get(outcome.fingerprint).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_json_is_a_typed_error_never_a_panic() {
    let dir = tmp_dir("corrupt");
    let path = dir.join(PLAN_STORE_FILE);
    for garbage in [
        "{",
        "not json at all",
        "{\"version\":1,\"plans\":[{\"fingerprint\":42}]}",
        "{\"version\":1,\"plans\":[{\"fingerprint\":\"0xzz\"}]}",
        "{\"version\":1,\"plans\":{}}",
        "{\"plans\":[]}",
        // A structurally valid entry that names an unbuildable plan.
        "{\"version\":1,\"plans\":[{\"fingerprint\":\"0x0000000000000001\",\
          \"ncpus\":2,\"machine\":\"m\",\"format\":\"hybrid\",\"method\":\"naive\",\
          \"nthreads\":2,\"lanes\":1,\"predicted_bytes\":1.0,\"measured_secs\":1.0,\
          \"candidates_measured\":1,\"certified\":true}]}",
    ] {
        std::fs::write(&path, garbage).unwrap();
        let result = PlanStore::open_for_machine(&dir, "m".into(), 2);
        match result {
            Err(SymSpmvError::Parse(_)) | Err(SymSpmvError::InvalidStructure(_)) => {}
            other => panic!("garbage {garbage:?} produced {other:?}, expected a Parse error"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uncertified_plans_are_refused_on_write_and_read() {
    let dir = tmp_dir("uncertified");
    let mut store = PlanStore::open_for_machine(&dir, "m".into(), 2).unwrap();
    let plan = symspmv_tune::TunedPlan {
        spec: PlanSpec {
            format: symspmv_core::auto::FormatTag::Sss,
            method: ReductionMethod::Indexing,
            nthreads: 2,
            lanes: 1,
        },
        predicted_bytes: 1.0,
        measured_secs: 1.0,
        candidates_measured: 12,
        certified: false,
    };
    assert!(
        store.put(1, plan.clone()).is_err(),
        "store must refuse uncertified plans"
    );

    // A hand-edited uncertified entry on disk is never served.
    let mut certified = plan;
    certified.certified = true;
    store.put(1, certified).unwrap();
    store.save().unwrap();
    let path = dir.join(PLAN_STORE_FILE);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(
        &path,
        text.replace("\"certified\":true", "\"certified\":false"),
    )
    .unwrap();
    let reloaded = PlanStore::open_for_machine(&dir, "m".into(), 2).unwrap();
    assert!(
        reloaded.get(1).is_none(),
        "uncertified entries must not be served"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_tune_runs_on_the_same_seed_pick_the_same_plan() {
    let coo = gen::banded_random(600, 12, 6.0, 5);
    let a = tune_matrix(&coo, &opts(), &mut ModelMeasurer).unwrap();
    let b = tune_matrix(&coo, &opts(), &mut ModelMeasurer).unwrap();
    assert_eq!(a.winner, b.winner, "same seed must reproduce the same plan");
    assert_eq!(a.measured, b.measured);

    // A different seed may pick differently, but must still certify.
    let mut other = opts();
    other.seed = 0xBEEF;
    let c = tune_matrix(&coo, &other, &mut ModelMeasurer).unwrap();
    assert!(c.winner.certified);
}

#[test]
fn missing_store_directory_is_an_empty_store() {
    let dir =
        std::env::temp_dir().join(format!("symspmv-plan-store-missing-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = PlanStore::open_for_machine(&dir, "m".into(), 2).unwrap();
    assert!(store.is_empty());
    assert!(!store.ignored_version_mismatch());
}

#[test]
fn auto_kernel_runs_on_the_stored_thread_count() {
    let dir = tmp_dir("autokernel");
    let coo = gen::laplacian_2d(16, 16);
    let mut store = PlanStore::open_for_machine(
        &dir,
        symspmv_tune::machine::machine_model(),
        symspmv_tune::machine::ncpus(),
    )
    .unwrap();
    let (outcome, _) = tune_and_store(&coo, &mut store, &opts(), &mut ModelMeasurer).unwrap();
    let (mut kernel, choice) = symspmv_tune::auto_kernel(&coo, Some(&store)).unwrap();
    assert_eq!(choice.source, PlanSource::Store);
    assert_eq!(kernel.nthreads(), outcome.winner.spec.nthreads);
    let n = kernel.n();
    let x = vec![1.0; n];
    let mut y = vec![0.0; n];
    kernel.spmv(&x, &mut y);
    assert!(y.iter().all(|v: &f64| v.is_finite()));
    let _ = std::fs::remove_dir_all(&dir);
}
