//! Minimal machine identity for plan-store keys.
//!
//! The harness has a richer `MachineInfo` (caches, rustc, git revision)
//! for bench ledgers, but the harness sits *above* this crate in the
//! dependency graph, and a plan-store key wants exactly two stable facts:
//! the CPU model and the logical CPU count. Git revision and rustc are
//! deliberately excluded — a tuned plan is a property of the hardware,
//! not of the tree that measured it.

/// Logical CPUs visible to this process.
pub fn ncpus() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The CPU model string (`/proc/cpuinfo` "model name"), or a portable
/// stand-in when unavailable. Whitespace is collapsed so the key is
/// stable across kernels that pad the field differently.
pub fn machine_model() -> String {
    let from_proc = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.split_whitespace().collect::<Vec<_>>().join(" "))
        });
    match from_proc {
        Some(m) if !m.is_empty() => m,
        _ => format!("unknown-cpu-{}", std::env::consts::ARCH),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_key_parts_are_stable_within_a_process() {
        assert_eq!(machine_model(), machine_model());
        assert!(ncpus() >= 1);
    }
}
