//! The measured plan search: cost-model pruning, short timed runs, and
//! the certifier gate in front of the store.
//!
//! The search runs in three stages (DESIGN.md §18):
//!
//! 1. **Enumerate & prune.** [`symspmv_core::auto::enumerate_candidates`]
//!    scores the full `format × method × threads × lanes` space with the
//!    Eq. 1–2/3–6 traffic model; candidates predicted worse than
//!    `prune_factor ×` the best prediction are dropped — but never below
//!    `min_keep` survivors, because the model is only trusted to order
//!    coarsely.
//! 2. **Measure.** Each survivor is built as a real kernel on a real
//!    [`ExecutionContext`] of its thread count and timed over
//!    `samples × iterations` short runs through the existing
//!    `PhaseTimes`-instrumented SpMV/SpMM paths. The median per-vector
//!    time is the candidate's score. Measurement is behind the
//!    [`Measurer`] trait so tests can substitute a deterministic model.
//! 3. **Certify & pick.** The winner (best measured scalar candidate,
//!    with the best lane width of its configuration attached) is rebuilt
//!    and its [`RaceCertificate`](symspmv_verify::RaceCertificate) is
//!    validated for exactly the tuned configuration before the plan may
//!    be stored or used.

use crate::store::{PlanStore, TunedPlan};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use symspmv_core::auto::{enumerate_candidates, FormatTag, PlanSpec};
use symspmv_core::{ParallelSpmm, ParallelSpmv, ReductionMethod, SymSpmv, SymSpmvError};
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::block::VectorBlock;
use symspmv_sparse::stats::{matrix_stats, MatrixStats};
use symspmv_sparse::{CooMatrix, SparseError, SssMatrix};

/// Search-space and budget configuration.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Thread counts to explore (each gets its own pool).
    pub thread_counts: Vec<usize>,
    /// SpMM lane widths to explore; `1` (scalar SpMV) is always included.
    pub lanes: Vec<usize>,
    /// Timed samples per candidate (median taken). Overridable via the
    /// `SYMSPMV_BENCH_SAMPLES` environment variable in
    /// [`TuneOptions::for_machine`].
    pub samples: usize,
    /// SpMV/SpMM iterations per sample.
    pub iterations: usize,
    /// Keep candidates predicted within this factor of the best
    /// prediction.
    pub prune_factor: f64,
    /// Never prune below this many survivors.
    pub min_keep: usize,
    /// Seed for deterministic measurers (ignored by wall-clock timing).
    pub seed: u64,
}

impl TuneOptions {
    /// A bounded default space for a machine with `ncpus` logical CPUs:
    /// power-of-two thread counts up to `ncpus`, lane widths {1, 8},
    /// samples from `SYMSPMV_BENCH_SAMPLES` (default 5).
    pub fn for_machine(ncpus: usize) -> TuneOptions {
        let mut thread_counts = vec![1usize];
        let mut p = 2;
        while p < ncpus {
            thread_counts.push(p);
            p *= 2;
        }
        if ncpus > 1 {
            thread_counts.push(ncpus);
        }
        let samples = std::env::var("SYMSPMV_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&s: &usize| s > 0)
            .unwrap_or(5);
        TuneOptions {
            thread_counts,
            lanes: vec![1, 8],
            samples,
            iterations: 16,
            prune_factor: 1.6,
            min_keep: 12,
            seed: 0xC4A05,
        }
    }

    fn lanes_with_scalar(&self) -> Vec<usize> {
        let mut lanes = self.lanes.clone();
        if !lanes.contains(&1) {
            lanes.insert(0, 1);
        }
        lanes
    }
}

/// One line of the search table.
#[derive(Debug, Clone)]
pub struct CandidateRow {
    /// The configuration.
    pub spec: PlanSpec,
    /// Cost-model prediction (bytes per vector, ranking-only units).
    pub predicted_bytes: f64,
    /// `true` when the cost model pruned this candidate before
    /// measurement.
    pub pruned: bool,
    /// Raw per-vector samples in seconds (empty when pruned).
    pub samples: Vec<f64>,
    /// Median per-vector seconds (`INFINITY` when pruned).
    pub per_vector_secs: f64,
}

/// The full result of one matrix search.
#[derive(Debug)]
pub struct TuneOutcome {
    /// Structural fingerprint of the tuned matrix.
    pub fingerprint: u64,
    /// The stats the cost model ranked from.
    pub stats: MatrixStats,
    /// Every enumerated candidate, pruned and measured alike, sorted by
    /// predicted cost.
    pub rows: Vec<CandidateRow>,
    /// Survivor count (rows actually measured).
    pub measured: usize,
    /// The certified winner.
    pub winner: TunedPlan,
}

/// How candidate timings are produced. The real implementation times
/// kernels on live pools; tests inject a deterministic model so two runs
/// with one seed are bit-identical.
pub trait Measurer {
    /// Returns `samples` per-vector timings (seconds) for `spec` on
    /// `sss`. `predicted` is the candidate's cost-model score, available
    /// to synthetic measurers.
    fn measure(
        &mut self,
        sss: &SssMatrix,
        spec: &PlanSpec,
        predicted: f64,
        opts: &TuneOptions,
    ) -> Result<Vec<f64>, SymSpmvError>;
}

/// Wall-clock measurement through the shared runtime: one
/// [`ExecutionContext`] per distinct thread count (reused across
/// candidates, plan cache pre-sized so the sweep cannot thrash its own
/// LRU), scalar SpMV for `lanes == 1`, lane-interleaved SpMM otherwise.
#[derive(Default)]
pub struct TimedMeasurer {
    pools: HashMap<usize, Arc<ExecutionContext>>,
}

impl TimedMeasurer {
    /// A measurer with no pools yet; pools are created per thread count on
    /// first use.
    pub fn new() -> TimedMeasurer {
        TimedMeasurer::default()
    }

    fn pool(&mut self, nthreads: usize, plan_slots: usize) -> Arc<ExecutionContext> {
        let ctx = self
            .pools
            .entry(nthreads)
            .or_insert_with(|| ExecutionContext::new(nthreads));
        ctx.plan_cache_reserve(plan_slots);
        Arc::clone(ctx)
    }
}

impl Measurer for TimedMeasurer {
    fn measure(
        &mut self,
        sss: &SssMatrix,
        spec: &PlanSpec,
        _predicted: f64,
        opts: &TuneOptions,
    ) -> Result<Vec<f64>, SymSpmvError> {
        // Each strategy contributes one plan entry plus the shared
        // partition; 2× the strategy count is a safe per-sweep bound.
        let ctx = self.pool(spec.nthreads, 8);
        let mut kernel = SymSpmv::from_sss(sss.clone(), &ctx, spec.method, spec.format.to_format());
        let n = kernel.n();
        let iters = opts.iterations.max(1);
        let mut samples = Vec::with_capacity(opts.samples);
        if spec.lanes == 1 {
            let mut x = vec![1.0f64; n];
            let mut y = vec![0.0f64; n];
            kernel.try_spmv(&x, &mut y)?; // warm-up & fault surface
            std::mem::swap(&mut x, &mut y);
            for _ in 0..opts.samples.max(1) {
                let t0 = Instant::now();
                for _ in 0..iters {
                    kernel.spmv(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                }
                samples.push(t0.elapsed().as_secs_f64() / iters as f64);
            }
        } else {
            let mut x = VectorBlock::seeded(n, spec.lanes, 0xFEED);
            let mut y = VectorBlock::zeros(n, spec.lanes);
            kernel.spmm(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
            for _ in 0..opts.samples.max(1) {
                let t0 = Instant::now();
                for _ in 0..iters {
                    kernel.spmm(&x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                }
                // Score is *per vector*: SpMM wall time over lanes.
                samples.push(t0.elapsed().as_secs_f64() / (iters * spec.lanes) as f64);
            }
        }
        Ok(samples)
    }
}

/// A deterministic pseudo-measurer: "timings" are the cost-model
/// prediction perturbed by a SplitMix64 stream seeded from
/// `(opts.seed, spec.id())`. Two runs with the same seed produce
/// bit-identical samples — the determinism contract the test suite pins.
#[derive(Debug, Default, Clone, Copy)]
pub struct ModelMeasurer;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Measurer for ModelMeasurer {
    fn measure(
        &mut self,
        _sss: &SssMatrix,
        spec: &PlanSpec,
        predicted: f64,
        opts: &TuneOptions,
    ) -> Result<Vec<f64>, SymSpmvError> {
        let mut state = opts.seed;
        for byte in spec.id().bytes() {
            state = state.wrapping_mul(0x100).wrapping_add(byte as u64);
            splitmix64(&mut state);
        }
        let samples = (0..opts.samples.max(1))
            .map(|_| {
                // ±5% multiplicative jitter around a fictional 10 GB/s.
                let jitter = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                predicted / 10e9 * (0.95 + 0.1 * jitter)
            })
            .collect();
        Ok(samples)
    }
}

fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::INFINITY;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

fn invalid(msg: String) -> SymSpmvError {
    SymSpmvError::InvalidStructure(SparseError::Parse { line: 0, msg })
}

/// The certifier gate: rebuilds `spec` over `sss` and validates the
/// plan's race certificate for exactly the tuned configuration. An `Err`
/// here means the plan must be neither stored nor used.
pub fn certify_spec(sss: &SssMatrix, spec: &PlanSpec) -> Result<(), SymSpmvError> {
    if !spec.is_valid() {
        return Err(invalid(format!("{} is not a buildable plan", spec.id())));
    }
    let ctx = ExecutionContext::new(spec.nthreads);
    let kernel = SymSpmv::from_sss(sss.clone(), &ctx, spec.method, spec.format.to_format());
    kernel
        .certificate()
        .validate_for(
            sss.fingerprint(),
            spec.nthreads,
            "sym-sss",
            spec.method.tag(),
        )
        .map_err(|e| {
            invalid(format!(
                "tuned plan {} failed certification: {e}",
                spec.id()
            ))
        })
}

/// Runs the full search on `coo` with the given measurer. Pure with
/// respect to the plan store — see [`tune_and_store`] for the persisted
/// flow.
pub fn tune_matrix(
    coo: &CooMatrix,
    opts: &TuneOptions,
    measurer: &mut dyn Measurer,
) -> Result<TuneOutcome, SymSpmvError> {
    let sss = SssMatrix::try_from_coo(coo, 0.0)?;
    let stats = matrix_stats(coo);
    let kind = sss.kind();
    let fingerprint = sss.fingerprint();

    // Stage 1: enumerate and prune on predicted traffic.
    let lanes = opts.lanes_with_scalar();
    let mut scored = enumerate_candidates(&stats, kind, &opts.thread_counts, &lanes);
    if scored.is_empty() {
        return Err(invalid("tuning search space is empty".to_string()));
    }
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    let best_predicted = scored[0].1;
    let cut = best_predicted * opts.prune_factor.max(1.0);
    let keep = scored
        .iter()
        .filter(|(_, c)| *c <= cut)
        .count()
        .max(opts.min_keep.min(scored.len()));
    let mut kept: Vec<bool> = (0..scored.len()).map(|i| i < keep).collect();
    // The persisted plan is a scalar-SpMV decision, so at least one
    // scalar candidate must always be measured — SpMM lane amortization
    // would otherwise let wide candidates crowd every `k=1` point out of
    // the band.
    if !scored
        .iter()
        .zip(&kept)
        .any(|((s, _), &k)| k && s.lanes == 1)
    {
        if let Some(i) = scored.iter().position(|(s, _)| s.lanes == 1) {
            kept[i] = true;
        }
    }
    // The paper's conventional recommendation (SSS + local-vectors
    // indexing at full thread count) is always measured too: it is the
    // baseline the tuned plan must never lose to beyond noise, so the
    // comparison has to be in the table.
    let max_p = opts.thread_counts.iter().copied().max().unwrap_or(1);
    if let Some(i) = scored.iter().position(|(s, _)| {
        s.format == FormatTag::Sss
            && s.method == ReductionMethod::Indexing
            && s.nthreads == max_p
            && s.lanes == 1
    }) {
        kept[i] = true;
    }

    // Stage 2: measure the survivors.
    let mut rows = Vec::with_capacity(scored.len());
    for (i, (spec, predicted)) in scored.iter().enumerate() {
        if !kept[i] {
            rows.push(CandidateRow {
                spec: *spec,
                predicted_bytes: *predicted,
                pruned: true,
                samples: Vec::new(),
                per_vector_secs: f64::INFINITY,
            });
            continue;
        }
        let samples = measurer.measure(&sss, spec, *predicted, opts)?;
        let per_vector_secs = median(&samples);
        rows.push(CandidateRow {
            spec: *spec,
            predicted_bytes: *predicted,
            pruned: false,
            samples,
            per_vector_secs,
        });
    }
    let measured = rows.iter().filter(|r| !r.pruned).count();

    // Stage 3: pick the winner and pass it through the certifier gate.
    // The *plan* is a scalar-SpMV decision (format × method × threads);
    // the lane axis rides along as the best lane width measured for that
    // same configuration, for SpMM/batched callers.
    let scalar_best = rows
        .iter()
        .filter(|r| !r.pruned && r.spec.lanes == 1)
        .min_by(|a, b| a.per_vector_secs.total_cmp(&b.per_vector_secs))
        .ok_or_else(|| invalid("no scalar candidate survived pruning".to_string()))?;
    let best_lanes = rows
        .iter()
        .filter(|r| {
            !r.pruned
                && r.spec.format == scalar_best.spec.format
                && r.spec.method == scalar_best.spec.method
                && r.spec.nthreads == scalar_best.spec.nthreads
        })
        .min_by(|a, b| a.per_vector_secs.total_cmp(&b.per_vector_secs))
        .map(|r| r.spec.lanes)
        .unwrap_or(1);

    let spec = PlanSpec {
        lanes: best_lanes,
        ..scalar_best.spec
    };
    certify_spec(&sss, &spec)?;

    let winner = TunedPlan {
        spec,
        predicted_bytes: scalar_best.predicted_bytes,
        measured_secs: scalar_best.per_vector_secs,
        candidates_measured: measured,
        certified: true,
    };
    Ok(TuneOutcome {
        fingerprint,
        stats,
        rows,
        measured,
        winner,
    })
}

/// The persisted flow: a store hit short-circuits the search entirely
/// (no re-measurement) and is re-certified before being served; a miss
/// runs [`tune_matrix`], stores the certified winner, and saves the
/// store. Returns the outcome plus whether the store served it.
pub fn tune_and_store(
    coo: &CooMatrix,
    store: &mut PlanStore,
    opts: &TuneOptions,
    measurer: &mut dyn Measurer,
) -> Result<(TuneOutcome, bool), SymSpmvError> {
    let sss = SssMatrix::try_from_coo(coo, 0.0)?;
    let fingerprint = sss.fingerprint();
    if let Some(plan) = store.get(fingerprint).cloned() {
        certify_spec(&sss, &plan.spec)?;
        let outcome = TuneOutcome {
            fingerprint,
            stats: matrix_stats(coo),
            rows: Vec::new(),
            measured: 0,
            winner: plan,
        };
        return Ok((outcome, true));
    }
    let outcome = tune_matrix(coo, opts, measurer)?;
    store.put(fingerprint, outcome.winner.clone())?;
    store.save()?;
    Ok((outcome, false))
}

/// The `ParallelSpmv`-level auto constructor: builds the best-known kernel
/// for `coo` on its *own* context sized by the decision — a stored plan's
/// tuned thread count when the store matches, the machine's CPU count
/// under the cost model otherwise. Returns the kernel (as the trait
/// object the solvers and the harness consume) plus the decision record.
pub fn auto_kernel(
    coo: &CooMatrix,
    store: Option<&PlanStore>,
) -> Result<
    (
        Box<dyn symspmv_core::ParallelSpmv>,
        symspmv_core::auto::AutoChoice,
    ),
    SymSpmvError,
> {
    let nthreads = match store {
        Some(s) => {
            let sss = SssMatrix::try_from_coo(coo, 0.0)?;
            s.get(sss.fingerprint())
                .map(|p| p.spec.nthreads)
                .unwrap_or_else(crate::machine::ncpus)
        }
        None => crate::machine::ncpus(),
    };
    let ctx = ExecutionContext::new(nthreads);
    let advisor = store.map(|s| s as &dyn symspmv_core::auto::PlanAdvisor);
    let (engine, choice) = SymSpmv::auto_with(&ctx, coo, advisor)?;
    Ok((Box::new(engine), choice))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> TuneOptions {
        TuneOptions {
            thread_counts: vec![1, 2],
            lanes: vec![1, 4],
            samples: 3,
            iterations: 2,
            prune_factor: 1.6,
            min_keep: 12,
            seed: 7,
        }
    }

    #[test]
    fn search_keeps_at_least_min_keep_candidates() {
        let coo = symspmv_sparse::gen::laplacian_2d(18, 18);
        let outcome = tune_matrix(&coo, &small_opts(), &mut ModelMeasurer).unwrap();
        assert!(outcome.measured >= 12, "measured {} < 12", outcome.measured);
        assert!(outcome.winner.certified);
        assert_eq!(
            outcome.winner.spec.nthreads.min(2),
            outcome.winner.spec.nthreads
        );
    }

    #[test]
    fn model_measurer_is_deterministic() {
        let coo = symspmv_sparse::gen::laplacian_2d(16, 16);
        let a = tune_matrix(&coo, &small_opts(), &mut ModelMeasurer).unwrap();
        let b = tune_matrix(&coo, &small_opts(), &mut ModelMeasurer).unwrap();
        assert_eq!(a.winner, b.winner);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(
                ra.samples,
                rb.samples,
                "samples differ for {}",
                ra.spec.id()
            );
        }
    }

    #[test]
    fn timed_measurer_produces_positive_samples() {
        let coo = symspmv_sparse::gen::laplacian_2d(14, 14);
        let mut opts = small_opts();
        opts.samples = 2;
        let outcome = tune_matrix(&coo, &opts, &mut TimedMeasurer::new()).unwrap();
        assert!(outcome.winner.measured_secs > 0.0);
        assert!(outcome
            .rows
            .iter()
            .filter(|r| !r.pruned)
            .all(|r| r.samples.iter().all(|s| *s > 0.0)));
    }

    #[test]
    fn certify_spec_rejects_invalid_plans() {
        let coo = symspmv_sparse::gen::laplacian_2d(10, 10);
        let sss = SssMatrix::try_from_coo(&coo, 0.0).unwrap();
        let bad = PlanSpec {
            format: symspmv_core::auto::FormatTag::Hybrid,
            method: symspmv_core::ReductionMethod::Naive,
            nthreads: 2,
            lanes: 1,
        };
        assert!(certify_spec(&sss, &bad).is_err());
    }
}
