#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! Measurement-driven plan search and the persisted tuned-plan store
//! (DESIGN.md §18).
//!
//! The engine crates carry the *model* half of auto-tuning — the Eq. 1–2
//! size models, the Eq. 3–6 working-set models, and
//! [`symspmv_core::SymSpmv::auto`]'s cost-model fallback. This crate adds
//! the *empirical* half, OSKI-style:
//!
//! * [`search::tune_matrix`] prunes the `format × reduction strategy ×
//!   thread count × lane width` space with the cost model, measures the
//!   survivors with short timed runs on real pools, and returns the full
//!   search table plus a certified winner;
//! * [`store::PlanStore`] persists winners as JSON keyed by `(matrix
//!   fingerprint, ncpus, machine model)` in a versioned file next to the
//!   binary matrix cache, and doubles as the
//!   [`symspmv_core::auto::PlanAdvisor`] that
//!   [`symspmv_core::SymSpmv::auto_with`] and the solver-level
//!   [`symspmv_solver::AdvisorChooser`] consult;
//! * [`search::auto_kernel`] is the `ParallelSpmv`-level auto
//!   constructor: matrix in, best-known kernel (own pool, tuned thread
//!   count) out;
//! * every plan passes the symbolic race certifier
//!   ([`search::certify_spec`]) before it is stored *or* served — an
//!   uncertified plan cannot exist in a store written by this crate, and
//!   a hand-edited one is refused on read.

pub mod machine;
pub mod search;
pub mod store;

pub use search::{
    auto_kernel, certify_spec, tune_and_store, tune_matrix, CandidateRow, Measurer, ModelMeasurer,
    TimedMeasurer, TuneOptions, TuneOutcome,
};
pub use store::{PlanStore, StoreKey, TunedPlan, PLAN_STORE_FILE, PLAN_STORE_VERSION};
