//! The versioned on-disk tuned-plan store.
//!
//! One JSON file (`plans.json` inside the store directory, conventionally
//! `<out>/.plan-store` next to the binary matrix cache) holds every tuned
//! plan the machine has measured, keyed by `(matrix fingerprint, ncpus,
//! machine model)`. The format is deliberately boring:
//!
//! ```json
//! {"version": 1,
//!  "plans": [{"fingerprint": "0xabc...", "ncpus": 4, "machine": "...",
//!             "format": "sss", "method": "idx", "nthreads": 4,
//!             "lanes": 8, "predicted_bytes": 1.2e6,
//!             "measured_secs": 3.1e-5, "candidates_measured": 18,
//!             "certified": true}]}
//! ```
//!
//! Failure policy (exercised by the `plan_store` test suite):
//!
//! * a missing file is an **empty store**, not an error;
//! * a `version` other than [`PLAN_STORE_VERSION`] means the schema moved
//!   — the file is **ignored** (the tuner re-measures and rewrites it),
//!   never misinterpreted;
//! * corrupted JSON or a malformed entry surfaces as a typed
//!   [`SymSpmvError`], never a panic;
//! * fingerprints are stored as hex *strings*: the JSON number line is
//!   `f64` and would silently destroy high bits of a 64-bit FNV hash.

use std::path::{Path, PathBuf};
use symspmv_core::auto::{FormatTag, PlanAdvisor, PlanSpec};
use symspmv_core::{ReductionMethod, SymSpmvError};
use symspmv_sparse::SparseError;
use symspmv_verify::jsonio::Json;

/// Schema version of the plan-store file. Bump on any incompatible change
/// to the entry layout; older files are then ignored wholesale.
pub const PLAN_STORE_VERSION: u64 = 1;

/// File name of the store inside its directory.
pub const PLAN_STORE_FILE: &str = "plans.json";

/// The identity a stored plan is valid for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Structural fingerprint of the matrix (values excluded).
    pub fingerprint: u64,
    /// Logical CPUs of the machine the plan was measured on.
    pub ncpus: usize,
    /// CPU model string (`/proc/cpuinfo` "model name" or a stand-in).
    pub machine: String,
}

/// One persisted tuning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedPlan {
    /// The winning configuration.
    pub spec: PlanSpec,
    /// The cost model's prediction for the winner (bytes per vector).
    pub predicted_bytes: f64,
    /// Measured per-vector seconds of the winner (median of samples).
    pub measured_secs: f64,
    /// How many cost-model-surviving candidates were measured.
    pub candidates_measured: usize,
    /// Whether the plan passed the symbolic race certifier before being
    /// stored. Always `true` for plans written by this crate — the tuner
    /// refuses to persist an uncertified plan — but kept explicit so a
    /// hand-edited entry cannot masquerade as certified.
    pub certified: bool,
}

fn parse_err(msg: String) -> SymSpmvError {
    SymSpmvError::Parse(SparseError::Parse { line: 0, msg })
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> SymSpmvError {
    SymSpmvError::Parse(SparseError::Io(format!("{what} {}: {e}", path.display())))
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, SymSpmvError> {
    obj.get(key)
        .ok_or_else(|| parse_err(format!("plan store entry is missing {key:?}")))
}

fn num_field(obj: &Json, key: &str) -> Result<f64, SymSpmvError> {
    match field(obj, key)? {
        Json::Num(v) => Ok(*v),
        other => Err(parse_err(format!(
            "plan store field {key:?} must be a number, got {other:?}"
        ))),
    }
}

fn usize_field(obj: &Json, key: &str) -> Result<usize, SymSpmvError> {
    let v = num_field(obj, key)?;
    if v.fract() != 0.0 || v < 0.0 || v > usize::MAX as f64 {
        return Err(parse_err(format!(
            "plan store field {key:?} must be a non-negative integer, got {v}"
        )));
    }
    Ok(v as usize)
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, SymSpmvError> {
    match field(obj, key)? {
        Json::Str(s) => Ok(s.as_str()),
        other => Err(parse_err(format!(
            "plan store field {key:?} must be a string, got {other:?}"
        ))),
    }
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, SymSpmvError> {
    match field(obj, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(parse_err(format!(
            "plan store field {key:?} must be a boolean, got {other:?}"
        ))),
    }
}

fn fingerprint_to_json(fp: u64) -> Json {
    Json::Str(format!("{fp:#018x}"))
}

fn fingerprint_from_str(s: &str) -> Result<u64, SymSpmvError> {
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| parse_err(format!("fingerprint {s:?} is not 0x-prefixed hex")))?;
    u64::from_str_radix(hex, 16)
        .map_err(|e| parse_err(format!("fingerprint {s:?} is not valid hex: {e}")))
}

fn method_from_tag(tag: &str) -> Result<ReductionMethod, SymSpmvError> {
    match tag {
        "naive" => Ok(ReductionMethod::Naive),
        "eff" => Ok(ReductionMethod::EffectiveRanges),
        "idx" => Ok(ReductionMethod::Indexing),
        "race" => Ok(ReductionMethod::Race),
        other => Err(parse_err(format!("unknown reduction method tag {other:?}"))),
    }
}

fn entry_to_json(key: &StoreKey, plan: &TunedPlan) -> Json {
    Json::Obj(vec![
        ("fingerprint".into(), fingerprint_to_json(key.fingerprint)),
        ("ncpus".into(), Json::Num(key.ncpus as f64)),
        ("machine".into(), Json::Str(key.machine.clone())),
        ("format".into(), Json::Str(plan.spec.format.tag().into())),
        ("method".into(), Json::Str(plan.spec.method.tag().into())),
        ("nthreads".into(), Json::Num(plan.spec.nthreads as f64)),
        ("lanes".into(), Json::Num(plan.spec.lanes as f64)),
        ("predicted_bytes".into(), Json::Num(plan.predicted_bytes)),
        ("measured_secs".into(), Json::Num(plan.measured_secs)),
        (
            "candidates_measured".into(),
            Json::Num(plan.candidates_measured as f64),
        ),
        ("certified".into(), Json::Bool(plan.certified)),
    ])
}

fn entry_from_json(obj: &Json) -> Result<(StoreKey, TunedPlan), SymSpmvError> {
    let key = StoreKey {
        fingerprint: fingerprint_from_str(str_field(obj, "fingerprint")?)?,
        ncpus: usize_field(obj, "ncpus")?,
        machine: str_field(obj, "machine")?.to_string(),
    };
    let format = FormatTag::parse(str_field(obj, "format")?)
        .ok_or_else(|| parse_err("unknown format tag in plan store".to_string()))?;
    let spec = PlanSpec {
        format,
        method: method_from_tag(str_field(obj, "method")?)?,
        nthreads: usize_field(obj, "nthreads")?,
        lanes: usize_field(obj, "lanes")?,
    };
    if !spec.is_valid() {
        return Err(parse_err(format!(
            "plan store entry {} is not a buildable configuration",
            spec.id()
        )));
    }
    let plan = TunedPlan {
        spec,
        predicted_bytes: num_field(obj, "predicted_bytes")?,
        measured_secs: num_field(obj, "measured_secs")?,
        candidates_measured: usize_field(obj, "candidates_measured")?,
        certified: bool_field(obj, "certified")?,
    };
    Ok((key, plan))
}

/// The on-disk plan store, loaded into memory, with an *ambient* machine
/// identity: lookups through the convenience [`PlanStore::get`] and the
/// [`PlanAdvisor`] impl are scoped to the `(ncpus, machine)` this store
/// was opened for, so a file copied from another machine can never serve
/// its plans here.
#[derive(Debug)]
pub struct PlanStore {
    path: PathBuf,
    ncpus: usize,
    machine: String,
    plans: Vec<(StoreKey, TunedPlan)>,
    /// `true` when the file existed but carried a different schema
    /// version and was therefore ignored.
    version_mismatch: bool,
}

impl PlanStore {
    /// Opens (or initializes empty) the store in `dir` for this machine:
    /// `ncpus` from `available_parallelism`, the model string from
    /// [`crate::machine::machine_model`].
    pub fn open(dir: &Path) -> Result<PlanStore, SymSpmvError> {
        Self::open_for_machine(
            dir,
            crate::machine::machine_model(),
            crate::machine::ncpus(),
        )
    }

    /// Opens the store in `dir` under an explicit machine identity — the
    /// injection point for tests and for serving plans measured elsewhere.
    pub fn open_for_machine(
        dir: &Path,
        machine: String,
        ncpus: usize,
    ) -> Result<PlanStore, SymSpmvError> {
        let path = dir.join(PLAN_STORE_FILE);
        let mut store = PlanStore {
            path,
            ncpus,
            machine,
            plans: Vec::new(),
            version_mismatch: false,
        };
        let text = match std::fs::read_to_string(&store.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(io_err("cannot read plan store", &store.path, &e)),
        };
        let doc =
            Json::parse(&text).map_err(|e| parse_err(format!("corrupt plan store JSON: {e}")))?;
        let version = num_field(&doc, "version")?;
        if version != PLAN_STORE_VERSION as f64 {
            // A future (or ancient) schema: ignore rather than guess. The
            // next save rewrites the file at the current version.
            store.version_mismatch = true;
            return Ok(store);
        }
        let entries = match field(&doc, "plans")? {
            Json::Arr(a) => a,
            other => {
                return Err(parse_err(format!(
                    "plan store \"plans\" must be an array, got {other:?}"
                )))
            }
        };
        for entry in entries {
            let (key, plan) = entry_from_json(entry)?;
            store.plans.push((key, plan));
        }
        Ok(store)
    }

    /// The file this store reads and writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The ambient machine model string lookups are scoped to.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// The ambient logical-CPU count lookups are scoped to.
    pub fn ncpus(&self) -> usize {
        self.ncpus
    }

    /// Number of stored plans (all keys, not only this machine's).
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the store holds no plans.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Whether the on-disk file was ignored for carrying a different
    /// schema version.
    pub fn ignored_version_mismatch(&self) -> bool {
        self.version_mismatch
    }

    fn ambient_key(&self, fingerprint: u64) -> StoreKey {
        StoreKey {
            fingerprint,
            ncpus: self.ncpus,
            machine: self.machine.clone(),
        }
    }

    /// The stored plan for `fingerprint` under the ambient machine
    /// identity, if any. Uncertified entries are never served.
    pub fn get(&self, fingerprint: u64) -> Option<&TunedPlan> {
        self.get_key(&self.ambient_key(fingerprint))
    }

    /// Exact-key lookup. Uncertified entries are never served.
    pub fn get_key(&self, key: &StoreKey) -> Option<&TunedPlan> {
        self.plans
            .iter()
            .find(|(k, p)| k == key && p.certified)
            .map(|(_, p)| p)
    }

    /// Inserts or replaces the plan for `fingerprint` under the ambient
    /// machine identity. Refuses uncertified plans — the certifier gate is
    /// part of the store contract, not a caller courtesy.
    pub fn put(&mut self, fingerprint: u64, plan: TunedPlan) -> Result<(), SymSpmvError> {
        if !plan.certified {
            return Err(parse_err(format!(
                "refusing to store uncertified plan {}",
                plan.spec.id()
            )));
        }
        let key = self.ambient_key(fingerprint);
        if let Some(slot) = self.plans.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = plan;
        } else {
            self.plans.push((key, plan));
        }
        Ok(())
    }

    /// Writes the store back to disk (creating the directory if needed),
    /// always at [`PLAN_STORE_VERSION`].
    pub fn save(&self) -> Result<(), SymSpmvError> {
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| io_err("cannot create", dir, &e))?;
        }
        let doc = Json::Obj(vec![
            ("version".into(), Json::Num(PLAN_STORE_VERSION as f64)),
            (
                "plans".into(),
                Json::Arr(
                    self.plans
                        .iter()
                        .map(|(k, p)| entry_to_json(k, p))
                        .collect(),
                ),
            ),
        ]);
        let text = doc
            .write()
            .map_err(|e| parse_err(format!("cannot serialize plan store: {e}")))?;
        std::fs::write(&self.path, text)
            .map_err(|e| io_err("cannot write plan store", &self.path, &e))
    }
}

/// The store *is* an advisor: [`symspmv_core::SymSpmv::auto_with`] queries
/// it with the executing context's thread count and only a stored plan
/// tuned for exactly that count (under the ambient machine key) is served.
impl PlanAdvisor for PlanStore {
    fn lookup(&self, fingerprint: u64, nthreads: usize) -> Option<PlanSpec> {
        let plan = self.get(fingerprint)?;
        (plan.spec.nthreads == nthreads).then_some(plan.spec)
    }
}
