//! RACE-style recursive level-grouping coloring (Alappat et al.).
//!
//! Partitions the rows of a symmetric sparsity pattern into groups whose
//! members are pairwise *distance-2 disjoint* in the full adjacency: two rows
//! in the same group never share a write target when the symmetric SpMV
//! kernel scatters `y[r]` and `y[c]` for every stored entry `(r, c)`.
//! Executing the groups one barrier apart lets every thread write `y`
//! directly — no local vectors, no atomics, no reduction phase.
//!
//! The construction is the recursive scheme of the RACE paper, adapted to
//! our BFS machinery:
//!
//! 1. Per connected component, a George–Liu pseudo-peripheral root is found
//!    and BFS levels are built (`crate::bfs`). Every edge spans at most one
//!    level, so a row's write set `{r} ∪ N(r)` only touches levels
//!    `level(r) ± 1`: rows whose levels differ by ≥ 3 can never conflict.
//! 2. Levels are folded into three phases by `level % 3`. Within a phase,
//!    conflicts are only possible *inside* a single level, so each level is
//!    subcolored independently: an explicit within-level conflict graph is
//!    built (two rows conflict iff their write sets intersect) and properly
//!    colored by a recursive level/parity scheme with a greedy fallback.
//! 3. Rows writing a hub target shared by more than [`HUB_CAP`] rows are
//!    pulled out of the conflict graph (avoiding quadratic edge blowup) and
//!    given unique singleton subcolors above the recursive palette —
//!    conservative but trivially sound.
//!
//! The final group of row `r` is `base[level(r) % 3] + subcolor(r)` where
//! `base` is the prefix sum of the per-phase palette sizes. Groups are
//! non-empty, partition `0..n`, and the whole construction is deterministic.

use crate::bfs::{level_structure, LevelStructure};
use crate::graph::AdjGraph;
use symspmv_sparse::Idx;

/// Writers-per-target cap above which the target's writer rows are assigned
/// singleton subcolors instead of pairwise conflict edges.
const HUB_CAP: usize = 64;

/// Recursion depth limit for the level/parity coloring; deeper conflict
/// graphs fall back to deterministic greedy coloring.
const MAX_DEPTH: usize = 16;

/// A distance-2-disjoint grouping of the rows of a symmetric pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelColoring {
    /// Group id of every row, `group_of[r] < groups.len()`.
    pub group_of: Vec<u32>,
    /// Rows of each group in ascending order; the groups are non-empty and
    /// partition `0..n`.
    pub groups: Vec<Vec<Idx>>,
    /// BFS level of every row within its connected component.
    pub levels: Vec<u32>,
    /// Within-level subcolor of every row, `subcolors[r] < phase_sizes[levels[r] % 3]`.
    pub subcolors: Vec<u32>,
    /// Palette size of each `level % 3` phase: the maximum subcolor count
    /// over the levels congruent to that residue.
    pub phase_sizes: [u32; 3],
}

impl LevelColoring {
    /// Number of groups (barriers the scheduled kernel executes).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

/// Colors the rows of `g` into distance-2-disjoint groups.
pub fn level_color(g: &AdjGraph) -> LevelColoring {
    let n = g.n() as usize;
    let mut levels = vec![0u32; n];
    let mut subcolors = vec![0u32; n];
    let mut phase_sizes = [0u32; 3];
    let mut visited = vec![false; n];
    // Reused per-level scratch: writer lists per target plus the touched set.
    let mut writers: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut touched: Vec<usize> = Vec::new();

    for s in 0..n {
        if visited[s] {
            continue;
        }
        if g.degree(s as Idx) == 0 {
            // Isolated row: writes only y[s], conflict-free — level 0,
            // subcolor 0 (phase 0 always has at least one color).
            visited[s] = true;
            phase_sizes[0] = phase_sizes[0].max(1);
            continue;
        }
        let ls = component_levels(g, s as Idx, &mut visited);
        for (li, rows) in ls.levels.iter().enumerate() {
            for &r in rows {
                levels[r as usize] = li as u32;
            }
            let count = color_level(g, rows, &mut writers, &mut touched, &mut subcolors);
            let ph = li % 3;
            phase_sizes[ph] = phase_sizes[ph].max(count);
        }
    }

    let bases = [0, phase_sizes[0], phase_sizes[0] + phase_sizes[1]];
    let ngroups = (phase_sizes[0] + phase_sizes[1] + phase_sizes[2]) as usize;
    let mut group_of = vec![0u32; n];
    let mut groups: Vec<Vec<Idx>> = vec![Vec::new(); ngroups];
    for r in 0..n {
        let gid = bases[(levels[r] % 3) as usize] + subcolors[r];
        group_of[r] = gid;
        groups[gid as usize].push(r as Idx);
    }
    LevelColoring {
        group_of,
        groups,
        levels,
        subcolors,
        phase_sizes,
    }
}

/// Colors a strict-lower-triangle CSR pattern (the SSS column layout)
/// directly; see [`level_color`].
pub fn level_color_lower(n: Idx, rowptr: &[Idx], colind: &[Idx]) -> LevelColoring {
    level_color(&AdjGraph::from_lower_csr(n, rowptr, colind))
}

/// BFS level structure of `start`'s component rooted at a George–Liu
/// pseudo-peripheral vertex. Unlike [`crate::bfs::pseudo_peripheral`] this
/// reuses the caller's `visited` scratch (cleared via the level lists, not a
/// full `fill`), so many-component patterns stay linear overall. Leaves the
/// component's `visited` positions `true`.
fn component_levels(g: &AdjGraph, start: Idx, visited: &mut [bool]) -> LevelStructure {
    let mut ls = level_structure(g, start, visited);
    loop {
        let Some(last) = ls.levels.last() else {
            return ls;
        };
        let Some(&cand) = last.iter().min_by_key(|&&v| g.degree(v)) else {
            return ls;
        };
        for level in &ls.levels {
            for &v in level {
                visited[v as usize] = false;
            }
        }
        let ls2 = level_structure(g, cand, visited);
        if ls2.eccentricity() > ls.eccentricity() {
            ls = ls2;
        } else {
            // `ls2` re-marked the same component; keep the wider structure.
            return ls;
        }
    }
}

/// Subcolors the rows of one BFS level so that equal subcolors never share a
/// write target. Writes `subcolors[r]` for every `r` in `rows` and returns
/// the number of subcolors used (contiguous `0..count`).
fn color_level(
    g: &AdjGraph,
    rows: &[Idx],
    writers: &mut [Vec<u32>],
    touched: &mut Vec<usize>,
    subcolors: &mut [u32],
) -> u32 {
    let m = rows.len();
    if m == 1 {
        subcolors[rows[0] as usize] = 0;
        return 1;
    }
    // Writer lists: for every target `t`, which level-local rows write y[t].
    for (i, &r) in rows.iter().enumerate() {
        let ri = r as usize;
        if writers[ri].is_empty() {
            touched.push(ri);
        }
        writers[ri].push(i as u32);
        for &c in g.neighbors(r) {
            let ci = c as usize;
            if writers[ci].is_empty() {
                touched.push(ci);
            }
            writers[ci].push(i as u32);
        }
    }
    // Pairwise conflict edges per target; hub targets force their writers
    // into singleton subcolors instead.
    let mut forced = vec![false; m];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for &t in touched.iter() {
        let list = &writers[t];
        if list.len() > HUB_CAP {
            for &i in list {
                forced[i as usize] = true;
            }
        } else if list.len() > 1 {
            for a in 0..list.len() {
                for b in a + 1..list.len() {
                    let (x, y) = (list[a].min(list[b]), list[a].max(list[b]));
                    edges.push((x, y));
                }
            }
        }
    }
    for &t in touched.iter() {
        writers[t].clear();
    }
    touched.clear();

    // Compact the non-forced rows and build the conflict-graph CSR.
    let keep: Vec<u32> = (0..m as u32).filter(|&i| !forced[i as usize]).collect();
    let mut compact_of = vec![u32::MAX; m];
    for (ci, &i) in keep.iter().enumerate() {
        compact_of[i as usize] = ci as u32;
    }
    let mm = keep.len();
    let mut cedges: Vec<(u32, u32)> = edges
        .iter()
        .filter_map(|&(a, b)| {
            let (ca, cb) = (compact_of[a as usize], compact_of[b as usize]);
            (ca != u32::MAX && cb != u32::MAX).then(|| (ca.min(cb), ca.max(cb)))
        })
        .collect();
    cedges.sort_unstable();
    cedges.dedup();
    let mut xadj = vec![0usize; mm + 1];
    for &(a, b) in &cedges {
        xadj[a as usize + 1] += 1;
        xadj[b as usize + 1] += 1;
    }
    for i in 0..mm {
        xadj[i + 1] += xadj[i];
    }
    let mut cursor: Vec<usize> = xadj[..mm].to_vec();
    let mut adj = vec![0u32; cedges.len() * 2];
    for &(a, b) in &cedges {
        adj[cursor[a as usize]] = b;
        cursor[a as usize] += 1;
        adj[cursor[b as usize]] = a;
        cursor[b as usize] += 1;
    }

    let mut ctx = ColorCtx {
        xadj,
        adj,
        colors: vec![0u32; mm],
        member: vec![0u32; mm],
        seen: vec![0u32; mm],
        forb: vec![0u32; mm + 1],
        epoch: 0,
        gen: 0,
    };
    let all: Vec<u32> = (0..mm as u32).collect();
    let palette = if mm == 0 {
        0
    } else {
        color_subset(&mut ctx, &all, MAX_DEPTH)
    };
    for (ci, &i) in keep.iter().enumerate() {
        subcolors[rows[i as usize] as usize] = ctx.colors[ci];
    }
    // Singleton subcolors for the hub-forced rows, above the palette.
    let mut next = palette;
    for (i, &f) in forced.iter().enumerate() {
        if f {
            subcolors[rows[i] as usize] = next;
            next += 1;
        }
    }
    next
}

/// Scratch state for recursively coloring one within-level conflict graph.
struct ColorCtx {
    xadj: Vec<usize>,
    adj: Vec<u32>,
    colors: Vec<u32>,
    /// Epoch-stamped membership of the current subset.
    member: Vec<u32>,
    /// Epoch-stamped BFS visitation marks.
    seen: Vec<u32>,
    /// Generation-stamped forbidden-color marks for the greedy fallback.
    forb: Vec<u32>,
    epoch: u32,
    gen: u32,
}

/// Properly colors the subgraph induced by `verts` with contiguous colors
/// `0..k`, returning `k`. Recursive scheme: BFS the subset, color the
/// even-parity levels with one shared palette and the odd-parity levels with
/// a disjoint one (same-parity levels are never adjacent), recursing into
/// each level's induced subgraph. Falls back to greedy at depth 0.
fn color_subset(ctx: &mut ColorCtx, verts: &[u32], depth: usize) -> u32 {
    if verts.len() == 1 {
        ctx.colors[verts[0] as usize] = 0;
        return 1;
    }
    ctx.epoch += 1;
    let ep = ctx.epoch;
    for &v in verts {
        ctx.member[v as usize] = ep;
    }
    let mut has_edge = false;
    'scan: for &v in verts {
        for i in ctx.xadj[v as usize]..ctx.xadj[v as usize + 1] {
            if ctx.member[ctx.adj[i] as usize] == ep {
                has_edge = true;
                break 'scan;
            }
        }
    }
    if !has_edge {
        for &v in verts {
            ctx.colors[v as usize] = 0;
        }
        return 1;
    }
    if depth == 0 {
        return greedy_subset(ctx, verts, ep);
    }
    // BFS levels per component of the induced subgraph, in subset order.
    let mut units: Vec<(usize, Vec<u32>)> = Vec::new();
    for &s in verts {
        if ctx.seen[s as usize] == ep {
            continue;
        }
        ctx.seen[s as usize] = ep;
        let mut current = vec![s];
        let mut li = 0usize;
        while !current.is_empty() {
            let mut next_level: Vec<u32> = Vec::new();
            for &v in &current {
                for i in ctx.xadj[v as usize]..ctx.xadj[v as usize + 1] {
                    let w = ctx.adj[i];
                    if ctx.member[w as usize] == ep && ctx.seen[w as usize] != ep {
                        ctx.seen[w as usize] = ep;
                        next_level.push(w);
                    }
                }
            }
            units.push((li, std::mem::take(&mut current)));
            current = next_level;
            li += 1;
        }
    }
    let mut even_max = 0u32;
    for (li, unit) in &units {
        if li % 2 == 0 {
            even_max = even_max.max(color_subset(ctx, unit, depth - 1));
        }
    }
    let mut odd_max = 0u32;
    for (li, unit) in &units {
        if li % 2 == 1 {
            odd_max = odd_max.max(color_subset(ctx, unit, depth - 1));
            for &v in unit {
                ctx.colors[v as usize] += even_max;
            }
        }
    }
    even_max + odd_max
}

/// Deterministic greedy proper coloring of the subgraph induced by `verts`
/// (membership already stamped at epoch `ep`). Smallest-free-color in subset
/// order; colors are contiguous `0..k`.
fn greedy_subset(ctx: &mut ColorCtx, verts: &[u32], ep: u32) -> u32 {
    for &v in verts {
        ctx.colors[v as usize] = u32::MAX;
    }
    let mut used = 0u32;
    for &v in verts {
        ctx.gen += 1;
        let gen = ctx.gen;
        for i in ctx.xadj[v as usize]..ctx.xadj[v as usize + 1] {
            let w = ctx.adj[i] as usize;
            if ctx.member[w] == ep {
                let c = ctx.colors[w];
                if c != u32::MAX {
                    ctx.forb[c as usize] = gen;
                }
            }
        }
        let mut c = 0u32;
        while ctx.forb[c as usize] == gen {
            c += 1;
        }
        ctx.colors[v as usize] = c;
        used = used.max(c + 1);
    }
    used
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::CooMatrix;

    /// Brute-force validity: partition of all rows, and no two rows of a
    /// group within distance 2 of each other (shared write target).
    fn assert_valid(g: &AdjGraph, lc: &LevelColoring) {
        let n = g.n() as usize;
        assert_eq!(lc.group_of.len(), n);
        let total: usize = lc.groups.iter().map(Vec::len).sum();
        assert_eq!(total, n, "groups must partition the rows");
        let mut seen = vec![false; n];
        for (gid, rows) in lc.groups.iter().enumerate() {
            assert!(!rows.is_empty(), "group {gid} is empty");
            for &r in rows {
                assert!(!seen[r as usize], "row {r} appears twice");
                seen[r as usize] = true;
                assert_eq!(lc.group_of[r as usize], gid as u32);
            }
        }
        // Distance-2 disjointness against the full adjacency.
        let mut owner = vec![u32::MAX; n];
        for rows in &lc.groups {
            for &r in rows {
                for t in std::iter::once(r).chain(g.neighbors(r).iter().copied()) {
                    assert_ne!(
                        owner[t as usize], lc.group_of[r as usize],
                        "rows of one group share write target {t}"
                    );
                }
            }
            for &r in rows {
                owner[r as usize] = lc.group_of[r as usize];
                for &c in g.neighbors(r) {
                    owner[c as usize] = lc.group_of[r as usize];
                }
            }
            // Reset for the next group: a target may be re-claimed.
            for &r in rows {
                owner[r as usize] = u32::MAX;
                for &c in g.neighbors(r) {
                    owner[c as usize] = u32::MAX;
                }
            }
        }
    }

    fn path(n: u32) -> AdjGraph {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        AdjGraph::from_pattern(&coo)
    }

    fn grid(rows: u32, cols: u32) -> AdjGraph {
        let n = rows * cols;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    coo.push(v, v + 1, 1.0);
                    coo.push(v + 1, v, 1.0);
                }
                if r + 1 < rows {
                    coo.push(v, v + cols, 1.0);
                    coo.push(v + cols, v, 1.0);
                }
            }
        }
        AdjGraph::from_pattern(&coo)
    }

    #[test]
    fn path_coloring_valid() {
        let g = path(17);
        let lc = level_color(&g);
        assert_valid(&g, &lc);
        assert!(lc.num_groups() >= 3, "a path needs at least 3 groups");
    }

    #[test]
    fn grid_coloring_valid() {
        let g = grid(9, 7);
        let lc = level_color(&g);
        assert_valid(&g, &lc);
    }

    #[test]
    fn star_hub_forces_singletons() {
        // A star with more than HUB_CAP leaves: every leaf writes the hub,
        // so all leaves sharing a level must get distinct subcolors.
        let leaves = (HUB_CAP + 10) as u32;
        let mut coo = CooMatrix::new(leaves + 1, leaves + 1);
        for i in 1..=leaves {
            coo.push(0, i, 1.0);
            coo.push(i, 0, 1.0);
        }
        let g = AdjGraph::from_pattern(&coo);
        let lc = level_color(&g);
        assert_valid(&g, &lc);
        assert!(
            lc.num_groups() as u32 >= leaves,
            "leaves must be serialized"
        );
    }

    #[test]
    fn diagonal_only_is_one_group() {
        let coo = CooMatrix::new(100, 100);
        let g = AdjGraph::from_pattern(&coo);
        let lc = level_color(&g);
        assert_valid(&g, &lc);
        assert_eq!(lc.num_groups(), 1);
    }

    #[test]
    fn deterministic() {
        let g = grid(6, 11);
        assert_eq!(level_color(&g), level_color(&g));
    }

    #[test]
    fn lower_csr_matches_pattern() {
        // Tridiagonal: lower CSR has colind [0], [1], ... per row.
        let n = 8u32;
        let mut rowptr = vec![0u32];
        let mut colind = Vec::new();
        for r in 1..n {
            colind.push(r - 1);
            rowptr.push(colind.len() as u32);
        }
        rowptr.insert(1, 0);
        let from_csr = level_color_lower(n, &rowptr, &colind);
        let g = path(n);
        assert_eq!(from_csr, level_color(&g));
    }
}
