#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! Bandwidth-reducing matrix reordering.
//!
//! Implements the Reverse Cuthill–McKee algorithm the paper uses for its
//! reduced-bandwidth experiments (§V-D, Table III, Fig. 13), together with
//! the adjacency-graph and BFS machinery it needs.

pub mod bfs;
pub mod color;
pub mod graph;
pub mod rcm;

pub use color::{level_color, level_color_lower, LevelColoring};
pub use graph::AdjGraph;
pub use rcm::{rcm_order, rcm_permutation};
