//! Reverse Cuthill–McKee ordering.
//!
//! The classic bandwidth-minimizing reordering the paper applies in §V-D:
//! BFS from a pseudo-peripheral vertex, visiting neighbors in ascending
//! degree order, then reversing the ordering (George's improvement).
//! Disconnected components are processed in sequence, each from its own
//! pseudo-peripheral start.

use crate::bfs::pseudo_peripheral;
use crate::graph::AdjGraph;
use symspmv_sparse::{CooMatrix, Idx, Permutation, SparseError};

/// Computes the RCM *ordering*: `order[k]` is the old vertex placed at new
/// position `k`.
pub fn rcm_order(g: &AdjGraph) -> Vec<Idx> {
    let n = g.n() as usize;
    let mut order: Vec<Idx> = Vec::with_capacity(n);
    let mut visited = vec![false; n];

    // Degree-sorted neighbor scratch, reused across vertices.
    let mut nbrs: Vec<Idx> = Vec::new();

    for start in 0..n as Idx {
        if visited[start as usize] {
            continue;
        }
        let root = pseudo_peripheral(g, start);
        // Standard Cuthill–McKee queue-based traversal of this component.
        let comp_begin = order.len();
        visited[root as usize] = true;
        order.push(root);
        let mut head = comp_begin;
        while head < order.len() {
            let v = order[head];
            head += 1;
            nbrs.clear();
            nbrs.extend(
                g.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| !visited[w as usize]),
            );
            nbrs.sort_unstable_by_key(|&w| (g.degree(w), w));
            for &w in &nbrs {
                visited[w as usize] = true;
                order.push(w);
            }
        }
        // Reverse this component's span (the "R" in RCM).
        order[comp_begin..].reverse();
    }
    order
}

/// Computes the RCM permutation (`new = perm[old]`) of a matrix's pattern.
pub fn rcm_permutation(coo: &CooMatrix) -> Result<Permutation, SparseError> {
    if coo.nrows() != coo.ncols() {
        return Err(SparseError::NotSquare {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
        });
    }
    let g = AdjGraph::from_pattern(coo);
    Permutation::from_order(&rcm_order(&g))
}

/// Convenience: returns the RCM-reordered matrix `P·A·Pᵀ`.
pub fn rcm_reorder(coo: &CooMatrix) -> Result<CooMatrix, SparseError> {
    let p = rcm_permutation(coo)?;
    p.apply_symmetric(coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::stats::matrix_stats;

    #[test]
    fn order_is_a_permutation() {
        let mut coo = CooMatrix::new(6, 6);
        for (r, c) in [(0, 3), (3, 5), (1, 4), (2, 4)] {
            coo.push(r, c, 1.0);
            coo.push(c, r, 1.0);
        }
        let g = AdjGraph::from_pattern(&coo);
        let mut order = rcm_order(&g);
        assert_eq!(order.len(), 6);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_band() {
        // Take a tridiagonal matrix and scramble it; RCM must recover a
        // near-tridiagonal bandwidth.
        let n: Idx = 64;
        let mut tri = CooMatrix::new(n, n);
        for i in 0..n {
            tri.push(i, i, 2.0);
            if i + 1 < n {
                tri.push(i, i + 1, -1.0);
                tri.push(i + 1, i, -1.0);
            }
        }
        tri.canonicalize();
        // Scramble with a fixed "bit-reversal-ish" permutation.
        let map: Vec<Idx> = (0..n).map(|i| (i * 37) % n).collect();
        let scramble = Permutation::from_map(map).unwrap();
        let scrambled = scramble.apply_symmetric(&tri).unwrap();
        let before = matrix_stats(&scrambled).bandwidth;
        assert!(
            before > 10,
            "scramble should blow up the bandwidth, got {before}"
        );

        let reordered = rcm_reorder(&scrambled).unwrap();
        let after = matrix_stats(&reordered).bandwidth;
        assert!(after <= 2, "RCM should recover the band, got {after}");
        assert!(reordered.is_symmetric(0.0));
    }

    #[test]
    fn disconnected_components_all_ordered() {
        // Two disjoint edges plus an isolated vertex.
        let mut coo = CooMatrix::new(5, 5);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(3, 2, 1.0);
        let g = AdjGraph::from_pattern(&coo);
        let mut order = rcm_order(&g);
        assert_eq!(order.len(), 5);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rcm_on_random_spd_reduces_bandwidth() {
        let coo = symspmv_sparse::gen::mixed_bandwidth(400, 6.0, 0.3, 4, 17);
        let before = matrix_stats(&coo).bandwidth;
        let reordered = rcm_reorder(&coo).unwrap();
        let after = matrix_stats(&reordered).bandwidth;
        assert!(
            after < before,
            "RCM should reduce bandwidth: {before} -> {after}"
        );
    }

    #[test]
    fn rcm_permutation_is_valid_bijection() {
        let coo = symspmv_sparse::gen::laplacian_2d(8, 8);
        let p = rcm_permutation(&coo).unwrap();
        let id = p.then(&p.inverse());
        assert_eq!(id, Permutation::identity(64));
    }

    #[test]
    fn non_square_rejected() {
        let coo = CooMatrix::new(3, 4);
        assert!(rcm_permutation(&coo).is_err());
    }
}
