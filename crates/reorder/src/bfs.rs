//! Breadth-first level structures and the George–Liu pseudo-peripheral
//! vertex finder used to pick good RCM starting vertices.

use crate::graph::AdjGraph;
use symspmv_sparse::Idx;

/// The rooted level structure of a BFS from `root`, restricted to the
/// connected component of `root`.
#[derive(Debug, Clone)]
pub struct LevelStructure {
    /// Vertices grouped by BFS level, `levels[0] == [root]`.
    pub levels: Vec<Vec<Idx>>,
    /// Number of vertices reached (size of the component).
    pub reached: usize,
}

impl LevelStructure {
    /// Eccentricity of the root within its component (number of levels − 1).
    pub fn eccentricity(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Width of the widest level.
    pub fn width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// BFS level structure rooted at `root`. `visited` is a scratch buffer of
/// length `n` that must be `false` at the positions of this component; the
/// function leaves the component's positions `true`.
pub fn level_structure(g: &AdjGraph, root: Idx, visited: &mut [bool]) -> LevelStructure {
    let mut levels: Vec<Vec<Idx>> = Vec::new();
    let mut current = vec![root];
    visited[root as usize] = true;
    let mut reached = 1;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &v in &current {
            for &w in g.neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    next.push(w);
                    reached += 1;
                }
            }
        }
        levels.push(std::mem::take(&mut current));
        current = next;
    }
    LevelStructure { levels, reached }
}

/// George–Liu pseudo-peripheral vertex: start anywhere in the component,
/// repeatedly re-root the BFS at a minimum-degree vertex of the last level
/// until the eccentricity stops growing.
pub fn pseudo_peripheral(g: &AdjGraph, start: Idx) -> Idx {
    let n = g.n() as usize;
    let mut root = start;
    let mut scratch = vec![false; n];
    let mut ls = level_structure(g, root, &mut scratch);
    loop {
        let last = match ls.levels.last() {
            Some(l) if !l.is_empty() => l,
            _ => return root,
        };
        // Minimum-degree vertex of the deepest level.
        let Some(&cand) = last.iter().min_by_key(|&&v| g.degree(v)) else {
            unreachable!("level checked non-empty above");
        };
        scratch.fill(false);
        let ls2 = level_structure(g, cand, &mut scratch);
        if ls2.eccentricity() > ls.eccentricity() {
            root = cand;
            ls = ls2;
            scratch.fill(false);
        } else {
            return root;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_sparse::CooMatrix;

    fn path(n: u32) -> AdjGraph {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        AdjGraph::from_pattern(&coo)
    }

    #[test]
    fn levels_of_path() {
        let g = path(5);
        let mut vis = vec![false; 5];
        let ls = level_structure(&g, 2, &mut vis);
        assert_eq!(ls.reached, 5);
        assert_eq!(ls.eccentricity(), 2);
        assert_eq!(ls.levels[0], vec![2]);
        assert_eq!(ls.width(), 2);
    }

    #[test]
    fn pseudo_peripheral_finds_path_end() {
        let g = path(9);
        let p = pseudo_peripheral(&g, 4);
        assert!(p == 0 || p == 8, "got {p}");
    }

    #[test]
    fn isolated_vertex() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let g = AdjGraph::from_pattern(&coo);
        let mut vis = vec![false; 3];
        let ls = level_structure(&g, 2, &mut vis);
        assert_eq!(ls.reached, 1);
        assert_eq!(ls.eccentricity(), 0);
        assert_eq!(pseudo_peripheral(&g, 2), 2);
    }
}
