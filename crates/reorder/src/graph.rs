//! Undirected adjacency graph of a symmetric sparsity pattern.

use symspmv_sparse::{CooMatrix, Idx};

/// CSR-like adjacency structure (no self loops, symmetric edges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjGraph {
    n: Idx,
    xadj: Vec<usize>,
    adj: Vec<Idx>,
}

impl AdjGraph {
    /// Builds the adjacency graph of a square matrix's off-diagonal pattern.
    ///
    /// The pattern is symmetrized (an edge exists if either `(r, c)` or
    /// `(c, r)` is present), so structurally unsymmetric inputs are safe.
    pub fn from_pattern(coo: &CooMatrix) -> Self {
        assert_eq!(
            coo.nrows(),
            coo.ncols(),
            "adjacency graph needs a square matrix"
        );
        let n = coo.nrows();
        // Collect symmetrized, deduplicated edges.
        let mut edges: Vec<(Idx, Idx)> = Vec::with_capacity(coo.nnz() * 2);
        for (r, c, _) in coo.iter() {
            if r != c {
                edges.push((r, c));
                edges.push((c, r));
            }
        }
        edges.sort_unstable();
        edges.dedup();

        let mut xadj = vec![0usize; n as usize + 1];
        for &(r, _) in &edges {
            xadj[r as usize + 1] += 1;
        }
        for i in 0..n as usize {
            xadj[i + 1] += xadj[i];
        }
        let adj = edges.into_iter().map(|(_, c)| c).collect();
        AdjGraph { n, xadj, adj }
    }

    /// Builds the adjacency graph from a strict-lower-triangle CSR pattern
    /// (the column layout of an SSS matrix): `colind[rowptr[r]..rowptr[r+1]]`
    /// holds the columns `c < r` of row `r`. Every stored edge is mirrored,
    /// so the graph is the full symmetric adjacency of the matrix.
    pub fn from_lower_csr(n: Idx, rowptr: &[Idx], colind: &[Idx]) -> Self {
        assert_eq!(
            rowptr.len(),
            n as usize + 1,
            "rowptr must have n + 1 entries"
        );
        let mut edges: Vec<(Idx, Idx)> = Vec::with_capacity(colind.len() * 2);
        for r in 0..n {
            let lo = rowptr[r as usize] as usize;
            let hi = rowptr[r as usize + 1] as usize;
            for &c in &colind[lo..hi] {
                assert!(c < r, "lower-CSR pattern stores only columns below the row");
                edges.push((r, c));
                edges.push((c, r));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut xadj = vec![0usize; n as usize + 1];
        for &(r, _) in &edges {
            xadj[r as usize + 1] += 1;
        }
        for i in 0..n as usize {
            xadj[i + 1] += xadj[i];
        }
        let adj = edges.into_iter().map(|(_, c)| c).collect();
        AdjGraph { n, xadj, adj }
    }

    /// Number of vertices.
    pub fn n(&self) -> Idx {
        self.n
    }

    /// Number of (directed) edge slots; each undirected edge counts twice.
    pub fn edge_slots(&self) -> usize {
        self.adj.len()
    }

    /// Neighbors of vertex `v`, sorted ascending.
    pub fn neighbors(&self, v: Idx) -> &[Idx] {
        &self.adj[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: Idx) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> AdjGraph {
        // 0 - 1 - 2 - 3 as a symmetric tridiagonal pattern.
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4u32 {
            coo.push(i, i, 1.0);
        }
        for i in 0..3u32 {
            coo.push(i, i + 1, -1.0);
            coo.push(i + 1, i, -1.0);
        }
        AdjGraph::from_pattern(&coo)
    }

    #[test]
    fn structure() {
        let g = path_graph();
        assert_eq!(g.n(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.edge_slots(), 6);
    }

    #[test]
    fn self_loops_excluded() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let g = AdjGraph::from_pattern(&coo);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn unsymmetric_pattern_symmetrized() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 2, 1.0); // only one direction stored
        let g = AdjGraph::from_pattern(&coo);
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn duplicate_entries_deduplicated() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 3.0);
        let g = AdjGraph::from_pattern(&coo);
        assert_eq!(g.degree(0), 1);
    }
}
