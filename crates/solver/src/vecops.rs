//! Dense vector kernels used by CG.
//!
//! Small vectors run serially; larger ones use rayon's parallel chunks.
//! (The paper's CG parallelizes these with the same pthreads as the SpMV;
//! rayon here is the idiomatic Rust equivalent — DESIGN.md S4.)

use rayon::prelude::*;
use symspmv_sparse::Val;

/// Below this length every kernel runs serially — parallel overhead would
/// dominate.
pub const PAR_THRESHOLD: usize = 1 << 14;

const CHUNK: usize = 1 << 12;

/// Dot product `aᵀ·b`.
pub fn dot(a: &[Val], b: &[Val]) -> Val {
    assert_eq!(a.len(), b.len());
    if a.len() < PAR_THRESHOLD {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    } else {
        a.par_chunks(CHUNK)
            .zip(b.par_chunks(CHUNK))
            .map(|(ca, cb)| ca.iter().zip(cb).map(|(x, y)| x * y).sum::<Val>())
            .sum()
    }
}

/// Squared Euclidean norm.
pub fn norm2_sq(a: &[Val]) -> Val {
    dot(a, a)
}

/// `y += alpha·x`.
pub fn axpy(alpha: Val, x: &[Val], y: &mut [Val]) {
    assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    } else {
        y.par_chunks_mut(CHUNK).zip(x.par_chunks(CHUNK)).for_each(|(cy, cx)| {
            for (yi, xi) in cy.iter_mut().zip(cx) {
                *yi += alpha * xi;
            }
        });
    }
}

/// `p = r + beta·p` (the CG direction update).
pub fn xpby(r: &[Val], beta: Val, p: &mut [Val]) {
    assert_eq!(r.len(), p.len());
    if r.len() < PAR_THRESHOLD {
        for (pi, ri) in p.iter_mut().zip(r) {
            *pi = ri + beta * *pi;
        }
    } else {
        p.par_chunks_mut(CHUNK).zip(r.par_chunks(CHUNK)).for_each(|(cp, cr)| {
            for (pi, ri) in cp.iter_mut().zip(cr) {
                *pi = ri + beta * *pi;
            }
        });
    }
}

/// `y = x - y` in place on `y` (used for `r = b - A·x`).
pub fn sub_from(x: &[Val], y: &mut [Val]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi - *yi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_small_and_large_agree() {
        let n = PAR_THRESHOLD + 17;
        let a: Vec<Val> = (0..n).map(|i| (i % 7) as Val - 3.0).collect();
        let b: Vec<Val> = (0..n).map(|i| (i % 5) as Val - 2.0).collect();
        let serial: Val = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let par = dot(&a, &b);
        assert!((serial - par).abs() < 1e-6 * serial.abs().max(1.0));
        // Small path.
        assert_eq!(dot(&a[..100], &b[..100]),
            a[..100].iter().zip(&b[..100]).map(|(x, y)| x * y).sum::<Val>());
    }

    #[test]
    fn axpy_updates() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpy_large_path() {
        let n = PAR_THRESHOLD * 2;
        let x = vec![1.0; n];
        let mut y = vec![0.5; n];
        axpy(-0.5, &x, &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn xpby_direction_update() {
        let r = vec![1.0, 1.0];
        let mut p = vec![4.0, -2.0];
        xpby(&r, 0.5, &mut p);
        assert_eq!(p, vec![3.0, 0.0]);
    }

    #[test]
    fn sub_from_residual() {
        let b = vec![5.0, 5.0];
        let mut ax = vec![2.0, 7.0];
        sub_from(&b, &mut ax);
        assert_eq!(ax, vec![3.0, -2.0]);
    }

    #[test]
    fn norm_is_dot_with_self() {
        let a = vec![3.0, 4.0];
        assert_eq!(norm2_sq(&a), 25.0);
    }
}
