//! Dense vector kernels used by CG.
//!
//! Small vectors run serially; larger ones run SPMD on the shared
//! [`ExecutionContext`] pool — the same workers that execute the SpMV, as
//! in the paper's pthreads CG (DESIGN.md S4). Using the context instead of
//! a separate thread-pool library keeps the whole solve on one pool.

use symspmv_runtime::{ExecutionContext, SharedBuf};
use symspmv_sparse::Val;

/// Below this length every kernel runs serially — parallel overhead would
/// dominate.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Even [lo, hi) split of `len` elements for worker `tid` of `p`.
fn span(len: usize, tid: usize, p: usize) -> (usize, usize) {
    (len * tid / p, len * (tid + 1) / p)
}

/// Dot product `aᵀ·b`.
pub fn dot(ctx: &ExecutionContext, a: &[Val], b: &[Val]) -> Val {
    assert_eq!(a.len(), b.len());
    if a.len() < PAR_THRESHOLD {
        return a.iter().zip(b).map(|(x, y)| x * y).sum();
    }
    let p = ctx.nthreads();
    let mut partials = vec![0.0; p];
    let pb = SharedBuf::new(&mut partials);
    ctx.run(&|tid| {
        let (lo, hi) = span(a.len(), tid, p);
        let s: Val = a[lo..hi].iter().zip(&b[lo..hi]).map(|(x, y)| x * y).sum();
        // SAFETY(cert: disjoint-direct): slot tid is thread-private.
        unsafe { pb.set(tid, s) };
    });
    partials.iter().sum()
}

/// Squared Euclidean norm.
pub fn norm2_sq(ctx: &ExecutionContext, a: &[Val]) -> Val {
    dot(ctx, a, a)
}

/// `y += alpha·x`.
pub fn axpy(ctx: &ExecutionContext, alpha: Val, x: &[Val], y: &mut [Val]) {
    assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
        return;
    }
    let p = ctx.nthreads();
    let len = y.len();
    let yb = SharedBuf::new(y);
    ctx.run(&|tid| {
        let (lo, hi) = span(len, tid, p);
        // SAFETY(cert: disjoint-direct): spans tile 0..len disjointly.
        let cy = unsafe { yb.range_mut(lo, hi) };
        for (yi, xi) in cy.iter_mut().zip(&x[lo..hi]) {
            *yi += alpha * xi;
        }
    });
}

/// `p = r + beta·p` (the CG direction update).
pub fn xpby(ctx: &ExecutionContext, r: &[Val], beta: Val, p: &mut [Val]) {
    assert_eq!(r.len(), p.len());
    if r.len() < PAR_THRESHOLD {
        for (pi, ri) in p.iter_mut().zip(r) {
            *pi = ri + beta * *pi;
        }
        return;
    }
    let nt = ctx.nthreads();
    let len = p.len();
    let pb = SharedBuf::new(p);
    ctx.run(&|tid| {
        let (lo, hi) = span(len, tid, nt);
        // SAFETY(cert: disjoint-direct): spans tile 0..len disjointly.
        let cp = unsafe { pb.range_mut(lo, hi) };
        for (pi, ri) in cp.iter_mut().zip(&r[lo..hi]) {
            *pi = ri + beta * *pi;
        }
    });
}

/// `y = x - y` in place on `y` (used for `r = b - A·x`).
pub fn sub_from(x: &[Val], y: &mut [Val]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi - *yi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ctx() -> Arc<ExecutionContext> {
        ExecutionContext::new(3)
    }

    #[test]
    fn dot_small_and_large_agree() {
        let ctx = ctx();
        let n = PAR_THRESHOLD + 17;
        let a: Vec<Val> = (0..n).map(|i| (i % 7) as Val - 3.0).collect();
        let b: Vec<Val> = (0..n).map(|i| (i % 5) as Val - 2.0).collect();
        let serial: Val = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let par = dot(&ctx, &a, &b);
        assert!((serial - par).abs() < 1e-6 * serial.abs().max(1.0));
        // Small path.
        assert_eq!(
            dot(&ctx, &a[..100], &b[..100]),
            a[..100]
                .iter()
                .zip(&b[..100])
                .map(|(x, y)| x * y)
                .sum::<Val>()
        );
    }

    #[test]
    fn axpy_updates() {
        let ctx = ctx();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(&ctx, 2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpy_large_path() {
        let ctx = ctx();
        let n = PAR_THRESHOLD * 2;
        let x = vec![1.0; n];
        let mut y = vec![0.5; n];
        axpy(&ctx, -0.5, &x, &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn xpby_direction_update() {
        let ctx = ctx();
        let r = vec![1.0, 1.0];
        let mut p = vec![4.0, -2.0];
        xpby(&ctx, &r, 0.5, &mut p);
        assert_eq!(p, vec![3.0, 0.0]);
    }

    #[test]
    fn xpby_large_path() {
        let ctx = ctx();
        let n = PAR_THRESHOLD * 2 + 5;
        let r = vec![1.0; n];
        let mut p = vec![4.0; n];
        xpby(&ctx, &r, 0.5, &mut p);
        assert!(p.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn sub_from_residual() {
        let b = vec![5.0, 5.0];
        let mut ax = vec![2.0, 7.0];
        sub_from(&b, &mut ax);
        assert_eq!(ax, vec![3.0, -2.0]);
    }

    #[test]
    fn norm_is_dot_with_self() {
        let ctx = ctx();
        let a = vec![3.0, 4.0];
        assert_eq!(norm2_sq(&ctx, &a), 25.0);
    }
}
