//! Dense vector kernels used by CG.
//!
//! Small vectors run serially; larger ones run SPMD on the shared
//! [`ExecutionContext`] pool — the same workers that execute the SpMV, as
//! in the paper's pthreads CG (DESIGN.md S4). Using the context instead of
//! a separate thread-pool library keeps the whole solve on one pool.

use symspmv_runtime::{ExecutionContext, SharedBuf};
use symspmv_sparse::block::{VectorBlock, MAX_LANES};
use symspmv_sparse::Val;

/// Below this length every kernel runs serially — parallel overhead would
/// dominate.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Even [lo, hi) split of `len` elements for worker `tid` of `p`.
fn span(len: usize, tid: usize, p: usize) -> (usize, usize) {
    (len * tid / p, len * (tid + 1) / p)
}

/// Dot product `aᵀ·b`.
pub fn dot(ctx: &ExecutionContext, a: &[Val], b: &[Val]) -> Val {
    assert_eq!(a.len(), b.len());
    if a.len() < PAR_THRESHOLD {
        return a.iter().zip(b).map(|(x, y)| x * y).sum();
    }
    let p = ctx.nthreads();
    let mut partials = vec![0.0; p];
    let pb = SharedBuf::new(&mut partials);
    ctx.run(&|tid| {
        let (lo, hi) = span(a.len(), tid, p);
        let s: Val = a[lo..hi].iter().zip(&b[lo..hi]).map(|(x, y)| x * y).sum();
        // SAFETY(cert: disjoint-direct): slot tid is thread-private.
        unsafe { pb.set(tid, s) };
    });
    partials.iter().sum()
}

/// Squared Euclidean norm.
pub fn norm2_sq(ctx: &ExecutionContext, a: &[Val]) -> Val {
    dot(ctx, a, a)
}

/// `y += alpha·x`.
pub fn axpy(ctx: &ExecutionContext, alpha: Val, x: &[Val], y: &mut [Val]) {
    assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
        return;
    }
    let p = ctx.nthreads();
    let len = y.len();
    let yb = SharedBuf::new(y);
    ctx.run(&|tid| {
        let (lo, hi) = span(len, tid, p);
        // SAFETY(cert: disjoint-direct): spans tile 0..len disjointly.
        let cy = unsafe { yb.range_mut(lo, hi) };
        for (yi, xi) in cy.iter_mut().zip(&x[lo..hi]) {
            *yi += alpha * xi;
        }
    });
}

/// `p = r + beta·p` (the CG direction update).
pub fn xpby(ctx: &ExecutionContext, r: &[Val], beta: Val, p: &mut [Val]) {
    assert_eq!(r.len(), p.len());
    if r.len() < PAR_THRESHOLD {
        for (pi, ri) in p.iter_mut().zip(r) {
            *pi = ri + beta * *pi;
        }
        return;
    }
    let nt = ctx.nthreads();
    let len = p.len();
    let pb = SharedBuf::new(p);
    ctx.run(&|tid| {
        let (lo, hi) = span(len, tid, nt);
        // SAFETY(cert: disjoint-direct): spans tile 0..len disjointly.
        let cp = unsafe { pb.range_mut(lo, hi) };
        for (pi, ri) in cp.iter_mut().zip(&r[lo..hi]) {
            *pi = ri + beta * *pi;
        }
    });
}

/// `y = x - y` in place on `y` (used for `r = b - A·x`).
pub fn sub_from(x: &[Val], y: &mut [Val]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi - *yi;
    }
}

// ---------------------------------------------------------------------------
// Lane-wise block operations for block CG.
//
// Each function applies the scalar operation independently per lane, and —
// critically — runs the *same per-element op order per lane* as its scalar
// counterpart (rows ascending within the same thread spans, thresholded on
// the row count, partials summed in thread order). Lane `j` of a block
// operation is therefore bit-identical to the scalar operation on lane `j`,
// which is what lets block CG reproduce k scalar CG solves exactly.
// ---------------------------------------------------------------------------

/// Per-lane dot products `a_jᵀ·b_j` for every lane `j`.
pub fn dot_lanes(ctx: &ExecutionContext, a: &VectorBlock, b: &VectorBlock) -> [Val; MAX_LANES] {
    assert_eq!(a.n(), b.n());
    assert_eq!(a.lanes(), b.lanes());
    let (n, lanes) = (a.n(), a.lanes());
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let mut out = [0.0; MAX_LANES];
    if n < PAR_THRESHOLD {
        for i in 0..n {
            let ar = &ad[i * lanes..(i + 1) * lanes];
            let br = &bd[i * lanes..(i + 1) * lanes];
            for ((o, &x), &y) in out.iter_mut().zip(ar).zip(br) {
                *o += x * y;
            }
        }
        return out;
    }
    let p = ctx.nthreads();
    let mut partials = vec![0.0; p * lanes];
    let pb = SharedBuf::new(&mut partials);
    ctx.run(&|tid| {
        let (lo, hi) = span(n, tid, p);
        let mut acc = [0.0; MAX_LANES];
        for i in lo..hi {
            let ar = &ad[i * lanes..(i + 1) * lanes];
            let br = &bd[i * lanes..(i + 1) * lanes];
            for ((o, &x), &y) in acc.iter_mut().zip(ar).zip(br) {
                *o += x * y;
            }
        }
        for (j, &s) in acc.iter().enumerate().take(lanes) {
            // SAFETY(cert: disjoint-direct): lane group tid is
            // thread-private.
            unsafe { pb.set(tid * lanes + j, s) };
        }
    });
    for tid in 0..p {
        for (j, o) in out.iter_mut().enumerate().take(lanes) {
            *o += partials[tid * lanes + j];
        }
    }
    out
}

/// Per-lane squared Euclidean norms.
pub fn norm2_sq_lanes(ctx: &ExecutionContext, a: &VectorBlock) -> [Val; MAX_LANES] {
    dot_lanes(ctx, a, a)
}

/// `y_j += alpha[j]·x_j` for every lane `j` with `active[j]` — frozen
/// lanes are left bit-exactly untouched.
pub fn axpy_lanes(
    ctx: &ExecutionContext,
    alpha: &[Val; MAX_LANES],
    active: &[bool],
    x: &VectorBlock,
    y: &mut VectorBlock,
) {
    assert_eq!(x.n(), y.n());
    assert_eq!(x.lanes(), y.lanes());
    let (n, lanes) = (x.n(), x.lanes());
    let xd = x.as_slice();
    if n < PAR_THRESHOLD {
        let yd = y.as_mut_slice();
        for i in 0..n {
            let xr = &xd[i * lanes..(i + 1) * lanes];
            for j in 0..lanes {
                if active[j] {
                    yd[i * lanes + j] += alpha[j] * xr[j];
                }
            }
        }
        return;
    }
    let p = ctx.nthreads();
    let yb = SharedBuf::new(y.as_mut_slice());
    ctx.run(&|tid| {
        let (lo, hi) = span(n, tid, p);
        // SAFETY(cert: lane-lifted): row spans tile 0..n disjointly, so
        // their lane groups tile the block store disjointly.
        let cy = unsafe { yb.range_mut(lo * lanes, hi * lanes) };
        for i in lo..hi {
            let xr = &xd[i * lanes..(i + 1) * lanes];
            for j in 0..lanes {
                if active[j] {
                    cy[(i - lo) * lanes + j] += alpha[j] * xr[j];
                }
            }
        }
    });
}

/// `p_j = r_j + beta[j]·p_j` for every lane `j` with `active[j]`.
pub fn xpby_lanes(
    ctx: &ExecutionContext,
    r: &VectorBlock,
    beta: &[Val; MAX_LANES],
    active: &[bool],
    p: &mut VectorBlock,
) {
    assert_eq!(r.n(), p.n());
    assert_eq!(r.lanes(), p.lanes());
    let (n, lanes) = (r.n(), r.lanes());
    let rd = r.as_slice();
    if n < PAR_THRESHOLD {
        let pd = p.as_mut_slice();
        for i in 0..n {
            let rr = &rd[i * lanes..(i + 1) * lanes];
            for j in 0..lanes {
                if active[j] {
                    pd[i * lanes + j] = rr[j] + beta[j] * pd[i * lanes + j];
                }
            }
        }
        return;
    }
    let nt = ctx.nthreads();
    let pb = SharedBuf::new(p.as_mut_slice());
    ctx.run(&|tid| {
        let (lo, hi) = span(n, tid, nt);
        // SAFETY(cert: lane-lifted): row spans tile 0..n disjointly, so
        // their lane groups tile the block store disjointly.
        let cp = unsafe { pb.range_mut(lo * lanes, hi * lanes) };
        for i in lo..hi {
            let rr = &rd[i * lanes..(i + 1) * lanes];
            for j in 0..lanes {
                if active[j] {
                    let k = (i - lo) * lanes + j;
                    cp[k] = rr[j] + beta[j] * cp[k];
                }
            }
        }
    });
}

/// `y = x - y` in place on `y`, all lanes (used for `R = B - A·X`).
pub fn sub_from_lanes(x: &VectorBlock, y: &mut VectorBlock) {
    assert_eq!(x.n(), y.n());
    assert_eq!(x.lanes(), y.lanes());
    sub_from(x.as_slice(), y.as_mut_slice());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ctx() -> Arc<ExecutionContext> {
        ExecutionContext::new(3)
    }

    #[test]
    fn dot_small_and_large_agree() {
        let ctx = ctx();
        let n = PAR_THRESHOLD + 17;
        let a: Vec<Val> = (0..n).map(|i| (i % 7) as Val - 3.0).collect();
        let b: Vec<Val> = (0..n).map(|i| (i % 5) as Val - 2.0).collect();
        let serial: Val = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let par = dot(&ctx, &a, &b);
        assert!((serial - par).abs() < 1e-6 * serial.abs().max(1.0));
        // Small path.
        assert_eq!(
            dot(&ctx, &a[..100], &b[..100]),
            a[..100]
                .iter()
                .zip(&b[..100])
                .map(|(x, y)| x * y)
                .sum::<Val>()
        );
    }

    #[test]
    fn axpy_updates() {
        let ctx = ctx();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(&ctx, 2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpy_large_path() {
        let ctx = ctx();
        let n = PAR_THRESHOLD * 2;
        let x = vec![1.0; n];
        let mut y = vec![0.5; n];
        axpy(&ctx, -0.5, &x, &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn xpby_direction_update() {
        let ctx = ctx();
        let r = vec![1.0, 1.0];
        let mut p = vec![4.0, -2.0];
        xpby(&ctx, &r, 0.5, &mut p);
        assert_eq!(p, vec![3.0, 0.0]);
    }

    #[test]
    fn xpby_large_path() {
        let ctx = ctx();
        let n = PAR_THRESHOLD * 2 + 5;
        let r = vec![1.0; n];
        let mut p = vec![4.0; n];
        xpby(&ctx, &r, 0.5, &mut p);
        assert!(p.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn sub_from_residual() {
        let b = vec![5.0, 5.0];
        let mut ax = vec![2.0, 7.0];
        sub_from(&b, &mut ax);
        assert_eq!(ax, vec![3.0, -2.0]);
    }

    #[test]
    fn norm_is_dot_with_self() {
        let ctx = ctx();
        let a = vec![3.0, 4.0];
        assert_eq!(norm2_sq(&ctx, &a), 25.0);
    }
}
