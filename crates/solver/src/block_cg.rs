//! Block Conjugate Gradient: `k` independent CG solves advanced in
//! lockstep on one batched kernel.
//!
//! This is the end-to-end consumer of the batched SpMM path: each
//! iteration performs **one** [`ParallelSpmm::spmm`] over all `k`
//! right-hand sides — streaming the matrix once instead of `k` times — plus
//! lane-wise vector operations. The recurrences are *not* coupled (no
//! shared Krylov space, no block orthogonalization): lane `j` runs exactly
//! the scalar CG of [`mod@crate::cg`] on `(A, b_j)`, with its own `alpha_j`,
//! `beta_j` and residual, and freezes in place the moment it converges or
//! breaks down while the other lanes continue. Because the batched kernels
//! and the lane-wise vector ops reproduce the scalar op order per lane
//! bit-exactly, every lane's iterates are bit-identical to a scalar CG
//! solve of that lane — the property tests assert this.

use crate::cg::{CgConfig, SolveStatus, DIVERGENCE_GROWTH};
use crate::vecops;
use std::sync::Arc;
use symspmv_core::{ParallelSpmm, ParallelSpmv, VectorBlock};
use symspmv_runtime::timing::time_into;
use symspmv_runtime::PhaseTimes;
use symspmv_sparse::block::MAX_LANES;

/// Terminal state of one lane of a block solve.
#[derive(Debug, Clone)]
pub struct LaneOutcome {
    /// Iterations this lane actually advanced (it freezes afterwards).
    pub iterations: usize,
    /// Whether the lane reached the relative tolerance.
    pub converged: bool,
    /// How the lane ended.
    pub status: SolveStatus,
    /// Final recurrence residual norm `‖b_j − A·x_j‖`.
    pub residual_norm: f64,
    /// Residual-norm history (if requested); one entry per iteration the
    /// lane was active, plus the initial residual.
    pub history: Vec<f64>,
}

/// Outcome of a block CG solve.
#[derive(Debug, Clone)]
pub struct BlockSolveOutcome {
    /// Per-lane terminal states.
    pub lanes: Vec<LaneOutcome>,
    /// Iterations of the longest-running lane (= SpMM calls issued).
    pub iterations: usize,
    /// Phase breakdown over the whole block solve.
    pub times: PhaseTimes,
}

impl BlockSolveOutcome {
    /// Whether every lane converged.
    pub fn all_converged(&self) -> bool {
        self.lanes.iter().all(|l| l.converged)
    }
}

/// Solves the `k` systems `A·x_j = b_j` in lockstep, starting from the
/// initial guesses in `x`.
///
/// One SpMM per iteration advances every still-active lane; converged and
/// broken-down lanes are frozen (their `x`, `r`, `p` lanes stop changing)
/// and the loop ends when all lanes are frozen or `max_iters` is reached.
pub fn block_cg<K: ParallelSpmm + ParallelSpmv + ?Sized>(
    kernel: &mut K,
    b: &VectorBlock,
    x: &mut VectorBlock,
    config: &CgConfig,
) -> BlockSolveOutcome {
    let n = kernel.n();
    let lanes = b.lanes();
    assert_eq!(b.n(), n);
    assert_eq!(x.n(), n);
    assert_eq!(x.lanes(), lanes);
    let ctx = Arc::clone(kernel.spmm_context());

    let preexisting = kernel.times();
    let mut vec_time = std::time::Duration::ZERO;

    // R = B − A·X ; P = R.
    let mut r = VectorBlock::zeros(n, lanes);
    let mut p = VectorBlock::zeros(n, lanes);
    let mut ap = VectorBlock::zeros(n, lanes);
    kernel.spmm(x, &mut r);
    time_into(&mut vec_time, || {
        vecops::sub_from_lanes(b, &mut r);
        p.as_mut_slice().copy_from_slice(r.as_slice());
    });

    let b_norm_sq = vecops::norm2_sq_lanes(&ctx, b);
    let mut tol_sq = [0.0; MAX_LANES];
    for (t, &bn) in tol_sq.iter_mut().zip(&b_norm_sq).take(lanes) {
        *t = config.rel_tol * config.rel_tol * bn;
    }
    let mut rs_old = vecops::norm2_sq_lanes(&ctx, &r);
    let rs_initial = rs_old;

    let mut outcomes: Vec<LaneOutcome> = (0..lanes)
        .map(|j| LaneOutcome {
            iterations: 0,
            converged: config.rel_tol > 0.0 && rs_old[j] <= tol_sq[j],
            status: SolveStatus::MaxIterations,
            residual_norm: rs_old[j].sqrt(),
            history: if config.record_history {
                vec![rs_old[j].sqrt()]
            } else {
                Vec::new()
            },
        })
        .collect();
    let mut active: Vec<bool> = outcomes.iter().map(|o| !o.converged).collect();

    let mut iterations = 0;
    while iterations < config.max_iters && active.iter().any(|&a| a) {
        kernel.spmm(&p, &mut ap);
        time_into(&mut vec_time, || {
            let pap = vecops::dot_lanes(&ctx, &p, &ap);
            let mut alpha = [0.0; MAX_LANES];
            for j in 0..lanes {
                if !active[j] {
                    continue;
                }
                if !pap[j].is_finite() {
                    outcomes[j].status = SolveStatus::NonFiniteResidual;
                    active[j] = false;
                    continue;
                }
                if pap[j] <= 0.0 && rs_old[j] > 0.0 {
                    outcomes[j].status = SolveStatus::NotSpd { pap: pap[j] };
                    active[j] = false;
                    continue;
                }
                alpha[j] = if pap[j] != 0.0 {
                    rs_old[j] / pap[j]
                } else {
                    0.0
                };
            }
            vecops::axpy_lanes(&ctx, &alpha, &active, &p, x);
            let mut neg_alpha = [0.0; MAX_LANES];
            for (na, &a) in neg_alpha.iter_mut().zip(&alpha).take(lanes) {
                *na = -a;
            }
            vecops::axpy_lanes(&ctx, &neg_alpha, &active, &ap, &mut r);
            let rs_new = vecops::norm2_sq_lanes(&ctx, &r);
            let mut beta = [0.0; MAX_LANES];
            for j in 0..lanes {
                if !active[j] {
                    continue;
                }
                if !rs_new[j].is_finite() {
                    outcomes[j].status = SolveStatus::NonFiniteResidual;
                    outcomes[j].iterations += 1;
                    active[j] = false;
                    continue;
                }
                if rs_initial[j] > 0.0
                    && rs_new[j] > DIVERGENCE_GROWTH * DIVERGENCE_GROWTH * rs_initial[j]
                {
                    outcomes[j].status = SolveStatus::Diverged {
                        growth: (rs_new[j] / rs_initial[j]).sqrt(),
                    };
                    outcomes[j].iterations += 1;
                    rs_old[j] = rs_new[j];
                    active[j] = false;
                    continue;
                }
                beta[j] = if rs_old[j] != 0.0 {
                    rs_new[j] / rs_old[j]
                } else {
                    0.0
                };
                rs_old[j] = rs_new[j];
            }
            vecops::xpby_lanes(&ctx, &r, &beta, &active, &mut p);
            for j in 0..lanes {
                if !active[j] {
                    continue;
                }
                outcomes[j].iterations += 1;
                if config.record_history {
                    outcomes[j].history.push(rs_old[j].sqrt());
                }
                if config.rel_tol > 0.0 && rs_old[j] <= tol_sq[j] {
                    outcomes[j].converged = true;
                    active[j] = false;
                }
            }
        });
        iterations += 1;
    }

    for (j, o) in outcomes.iter_mut().enumerate() {
        o.residual_norm = rs_old[j].sqrt();
        if o.converged {
            o.status = SolveStatus::Converged;
        }
    }

    let after = kernel.times();
    let times = PhaseTimes {
        multiply: after.multiply - preexisting.multiply,
        reduce: after.reduce - preexisting.reduce,
        vector_ops: vec_time,
        preprocess: preexisting.preprocess,
    };
    ctx.ledger_add(&times);

    BlockSolveOutcome {
        lanes: outcomes,
        iterations,
        times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use symspmv_core::{CsrParallel, ReductionMethod, SymFormat, SymSpmv};
    use symspmv_runtime::ExecutionContext;
    use symspmv_sparse::CooMatrix;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn lanes_bitwise_match_independent_scalar_solves() {
        let coo = symspmv_sparse::gen::banded_random(300, 15, 6.0, 11);
        let n = 300;
        let cfg = CgConfig {
            max_iters: 800,
            rel_tol: 1e-9,
            record_history: false,
        };
        let ctx = ExecutionContext::new(3);
        for method in [
            ReductionMethod::Naive,
            ReductionMethod::EffectiveRanges,
            ReductionMethod::Indexing,
        ] {
            let mut k = SymSpmv::from_coo(&coo, &ctx, method, SymFormat::Sss).unwrap();
            let lanes = 4;
            let b = VectorBlock::seeded(n, lanes, 30);
            let mut x = VectorBlock::zeros(n, lanes);
            let res = block_cg(&mut k, &b, &mut x, &cfg);
            assert!(res.all_converged(), "{method:?}: {:?}", res.lanes);
            for j in 0..lanes {
                let mut xj = vec![0.0; n];
                let rj = cg(&mut k, &b.lane(j), &mut xj, &cfg);
                assert!(rj.converged);
                assert_eq!(
                    res.lanes[j].iterations, rj.iterations,
                    "{method:?} lane {j}: iteration counts differ"
                );
                assert_eq!(
                    bits(&x.lane(j)),
                    bits(&xj),
                    "{method:?} lane {j}: iterates not bit-identical"
                );
                assert_eq!(
                    res.lanes[j].residual_norm.to_bits(),
                    rj.residual_norm.to_bits()
                );
            }
        }
    }

    #[test]
    fn converged_lane_freezes_while_others_run() {
        let coo = symspmv_sparse::gen::laplacian_2d(15, 15);
        let n = 225;
        let ctx = ExecutionContext::new(2);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        // Lane 0 is the zero system (converges at iteration 0); lane 1 is a
        // real right-hand side.
        let zero = vec![0.0; n];
        let real = symspmv_sparse::dense::seeded_vector(n, 4);
        let b = VectorBlock::from_lanes(&[&zero, &real]);
        let mut x = VectorBlock::zeros(n, 2);
        let res = block_cg(
            &mut k,
            &b,
            &mut x,
            &CgConfig {
                max_iters: 1000,
                rel_tol: 1e-10,
                record_history: true,
            },
        );
        assert!(res.all_converged());
        assert_eq!(res.lanes[0].iterations, 0);
        assert!(res.lanes[1].iterations > 0);
        assert_eq!(res.iterations, res.lanes[1].iterations);
        assert!(x.lane(0).iter().all(|&v| v == 0.0), "frozen lane touched");
        assert_eq!(
            res.lanes[1].history.len(),
            res.lanes[1].iterations + 1,
            "history covers active iterations only"
        );
    }

    #[test]
    fn breakdown_reported_per_lane() {
        // -Laplacian is negative definite: every lane hits NotSpd on its
        // first iteration.
        let base = symspmv_sparse::gen::laplacian_2d(8, 8);
        let mut coo = CooMatrix::new(64, 64);
        for (r, c, v) in base.iter() {
            coo.push(r, c, -v);
        }
        coo.canonicalize();
        let ctx = ExecutionContext::new(2);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let b = VectorBlock::seeded(64, 2, 8);
        let mut x = VectorBlock::zeros(64, 2);
        let res = block_cg(&mut k, &b, &mut x, &CgConfig::default());
        assert!(!res.all_converged());
        for lane in &res.lanes {
            assert!(lane.status.is_breakdown(), "{:?}", lane.status);
            assert!(matches!(lane.status, SolveStatus::NotSpd { pap } if pap < 0.0));
        }
    }

    #[test]
    fn fixed_work_mode_runs_all_lanes_to_max_iters() {
        let coo = symspmv_sparse::gen::laplacian_2d(8, 8);
        let ctx = ExecutionContext::new(2);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let b = VectorBlock::seeded(64, 4, 1);
        let mut x = VectorBlock::zeros(64, 4);
        let res = block_cg(
            &mut k,
            &b,
            &mut x,
            &CgConfig {
                max_iters: 40,
                rel_tol: 0.0,
                record_history: false,
            },
        );
        assert_eq!(res.iterations, 40);
        for lane in &res.lanes {
            assert_eq!(lane.iterations, 40);
            assert_eq!(lane.status, SolveStatus::MaxIterations);
        }
        assert!(res.times.multiply > std::time::Duration::ZERO);
    }
}
