//! Jacobi-preconditioned Conjugate Gradient.
//!
//! The paper deliberately evaluates a *non-preconditioned* CG because
//! "improving the performance of a preconditioner is orthogonal to the
//! SpM×V optimization" (§II-C). This module supplies the simplest
//! preconditioner anyway — M = diag(A) — so downstream users get a
//! practical solver, and so the breakdown machinery demonstrably extends
//! to preconditioned iterations (the `vector_ops` phase absorbs the
//! preconditioner application).

use crate::cg::{CgConfig, SolveOutcome, SolveStatus, DIVERGENCE_GROWTH};
use crate::vecops;
use std::sync::Arc;
use symspmv_core::ParallelSpmv;
use symspmv_runtime::timing::time_into;
use symspmv_runtime::PhaseTimes;
use symspmv_sparse::{CooMatrix, Val};

/// Extracts the diagonal of a square COO matrix (zeros where absent).
pub fn diagonal_of(coo: &CooMatrix) -> Vec<Val> {
    assert_eq!(coo.nrows(), coo.ncols(), "diagonal of a non-square matrix");
    let mut d = vec![0.0; coo.nrows() as usize];
    for (r, c, v) in coo.iter() {
        if r == c {
            d[r as usize] += v;
        }
    }
    d
}

/// Applies `z = M⁻¹·r` for the Jacobi preconditioner.
fn apply_jacobi(inv_diag: &[Val], r: &[Val], z: &mut [Val]) {
    for ((zi, &ri), &di) in z.iter_mut().zip(r).zip(inv_diag) {
        *zi = ri * di;
    }
}

/// Solves `A·x = b` with Jacobi-preconditioned CG.
///
/// `diag` must be the diagonal of `A` (see [`diagonal_of`]); all entries
/// must be positive (A is SPD). Phase accounting matches [`mod@crate::cg`].
pub fn pcg_jacobi<K: ParallelSpmv + ?Sized>(
    kernel: &mut K,
    diag: &[Val],
    b: &[Val],
    x: &mut [Val],
    config: &CgConfig,
) -> SolveOutcome {
    let n = kernel.n();
    assert_eq!(diag.len(), n);
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    assert!(
        diag.iter().all(|&d| d > 0.0),
        "Jacobi needs a positive diagonal"
    );
    let ctx = Arc::clone(kernel.context());
    let inv_diag: Vec<Val> = diag.iter().map(|d| 1.0 / d).collect();

    let preexisting = kernel.times();
    let mut vec_time = std::time::Duration::ZERO;

    // All four work vectors are scratch leases from the context arena.
    let mut r = ctx.lease_scratch(n);
    let mut z = ctx.lease_scratch(n);
    let mut p = ctx.lease_scratch(n);
    let mut ap = ctx.lease_scratch(n);
    kernel.spmv(x, &mut r);
    time_into(&mut vec_time, || {
        vecops::sub_from(b, &mut r);
        apply_jacobi(&inv_diag, &r, &mut z);
        p.copy_from_slice(&z);
    });

    let b_norm_sq = vecops::norm2_sq(&ctx, b);
    let tol_sq = config.rel_tol * config.rel_tol * b_norm_sq;
    let mut rz = vecops::dot(&ctx, &r, &z);
    let mut r_norm_sq = vecops::norm2_sq(&ctx, &r);
    let mut history = Vec::new();
    if config.record_history {
        history.push(r_norm_sq.sqrt());
    }

    let rs_initial = r_norm_sq;
    let mut iterations = 0;
    let mut converged = config.rel_tol > 0.0 && r_norm_sq <= tol_sq;
    let mut breakdown: Option<SolveStatus> = None;
    while iterations < config.max_iters && !converged {
        kernel.spmv(&p, &mut ap);
        time_into(&mut vec_time, || {
            let pap = vecops::dot(&ctx, &p, &ap);
            if !pap.is_finite() {
                breakdown = Some(SolveStatus::NonFiniteResidual);
                return;
            }
            if pap <= 0.0 && r_norm_sq > 0.0 {
                breakdown = Some(SolveStatus::NotSpd { pap });
                return;
            }
            let alpha = if pap != 0.0 { rz / pap } else { 0.0 };
            vecops::axpy(&ctx, alpha, &p, x);
            vecops::axpy(&ctx, -alpha, &ap, &mut r);
            apply_jacobi(&inv_diag, &r, &mut z);
            let rz_new = vecops::dot(&ctx, &r, &z);
            let beta = if rz != 0.0 { rz_new / rz } else { 0.0 };
            vecops::xpby(&ctx, &z, beta, &mut p);
            rz = rz_new;
            r_norm_sq = vecops::norm2_sq(&ctx, &r);
            if !r_norm_sq.is_finite() {
                breakdown = Some(SolveStatus::NonFiniteResidual);
            } else if rs_initial > 0.0
                && r_norm_sq > DIVERGENCE_GROWTH * DIVERGENCE_GROWTH * rs_initial
            {
                breakdown = Some(SolveStatus::Diverged {
                    growth: (r_norm_sq / rs_initial).sqrt(),
                });
            }
        });
        if breakdown.is_some() {
            break;
        }
        if config.record_history {
            history.push(r_norm_sq.sqrt());
        }
        iterations += 1;
        if config.rel_tol > 0.0 && r_norm_sq <= tol_sq {
            converged = true;
        }
    }

    let after = kernel.times();
    let times = PhaseTimes {
        multiply: after.multiply - preexisting.multiply,
        reduce: after.reduce - preexisting.reduce,
        vector_ops: vec_time,
        preprocess: preexisting.preprocess,
    };
    ctx.ledger_add(&times);
    let status = breakdown.unwrap_or(if converged {
        SolveStatus::Converged
    } else {
        SolveStatus::MaxIterations
    });
    SolveOutcome {
        iterations,
        converged,
        status,
        residual_norm: r_norm_sq.sqrt(),
        times,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use symspmv_core::CsrParallel;
    use symspmv_runtime::ExecutionContext;
    use symspmv_sparse::dense::seeded_vector;

    /// A badly scaled SPD matrix: Laplacian with row/col scaling, where
    /// Jacobi preconditioning should cut the iteration count.
    fn scaled_laplacian(k: u32) -> CooMatrix {
        let base = symspmv_sparse::gen::laplacian_2d(k, k);
        let n = base.nrows();
        let scale = |i: u32| 1.0 + 99.0 * (f64::from(i) / f64::from(n)).powi(2);
        let mut out = CooMatrix::new(n, n);
        for (r, c, v) in base.iter() {
            out.push(r, c, v * scale(r) * scale(c));
        }
        out.canonicalize();
        out
    }

    #[test]
    fn pcg_converges_and_matches_cg_solution() {
        let coo = scaled_laplacian(16);
        let n = coo.nrows() as usize;
        let b = seeded_vector(n, 3);
        let cfg = CgConfig {
            max_iters: 6000,
            rel_tol: 1e-10,
            record_history: false,
        };

        let ctx = ExecutionContext::new(2);
        let mut k1 = CsrParallel::from_coo(&coo, &ctx);
        let mut x_cg = vec![0.0; n];
        let res_cg = cg(&mut k1, &b, &mut x_cg, &cfg);
        assert!(res_cg.converged);

        let diag = diagonal_of(&coo);
        let mut k2 = CsrParallel::from_coo(&coo, &ctx);
        let mut x_pcg = vec![0.0; n];
        let res_pcg = pcg_jacobi(&mut k2, &diag, &b, &mut x_pcg, &cfg);
        assert!(res_pcg.converged);

        for (a, bb) in x_cg.iter().zip(&x_pcg) {
            assert!((a - bb).abs() < 1e-5, "{a} vs {bb}");
        }
    }

    #[test]
    fn jacobi_cuts_iterations_on_badly_scaled_systems() {
        let coo = scaled_laplacian(20);
        let n = coo.nrows() as usize;
        let b = seeded_vector(n, 7);
        let cfg = CgConfig {
            max_iters: 20_000,
            rel_tol: 1e-8,
            record_history: false,
        };
        let diag = diagonal_of(&coo);

        let ctx = ExecutionContext::new(2);
        let mut k1 = CsrParallel::from_coo(&coo, &ctx);
        let mut x1 = vec![0.0; n];
        let plain = cg(&mut k1, &b, &mut x1, &cfg);

        let mut k2 = CsrParallel::from_coo(&coo, &ctx);
        let mut x2 = vec![0.0; n];
        let pre = pcg_jacobi(&mut k2, &diag, &b, &mut x2, &cfg);

        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations * 2 < plain.iterations,
            "Jacobi should at least halve the iterations: {} vs {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn pcg_reports_not_spd_on_indefinite_operator() {
        // A saddle matrix with positive diagonal sneaks past the Jacobi
        // precondition check but is indefinite; the curvature test catches it.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(0, 1, 4.0);
        coo.push(1, 0, 4.0);
        coo.canonicalize();
        let diag = diagonal_of(&coo);
        let ctx = ExecutionContext::new(1);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let b = vec![1.0, -1.0];
        let mut x = vec![0.0, 0.0];
        let res = pcg_jacobi(&mut k, &diag, &b, &mut x, &CgConfig::default());
        assert!(res.status.is_breakdown());
        assert!(matches!(res.status, SolveStatus::NotSpd { pap } if pap < 0.0));
        assert!(res.into_result().is_err());
    }

    #[test]
    fn diagonal_extraction() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 2, 9.0);
        coo.push(2, 2, 4.0);
        assert_eq!(diagonal_of(&coo), vec![2.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "positive diagonal")]
    fn zero_diagonal_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(0, 1, 1.0);
        let diag = diagonal_of(&coo); // diag[1] == 0
        let mut k = CsrParallel::from_coo(&coo, &ExecutionContext::new(1));
        let b = vec![1.0, 1.0];
        let mut x = vec![0.0, 0.0];
        let _ = pcg_jacobi(&mut k, &diag, &b, &mut x, &CgConfig::default());
    }
}
