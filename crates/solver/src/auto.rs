//! Solves on auto-selected kernels: CG/PCG entry points that take a
//! *tuned plan* instead of a pre-built kernel.
//!
//! The solver layer cannot depend on the tuner (the tuner measures through
//! kernels and solvers), so the coupling is inverted: anything that can
//! turn a matrix into a [`ParallelSpmv`] — the cost model, a persisted
//! plan store, a fixed conventional choice — implements [`KernelChooser`],
//! and [`cg_auto`] / [`pcg_jacobi_auto`] run the solve on whatever it
//! builds. `symspmv-tune` provides the store-backed chooser; the
//! [`CostModelChooser`] here is the dependency-free default.

use crate::cg::{cg, CgConfig, SolveOutcome};
use crate::pcg::{diagonal_of, pcg_jacobi};
use std::sync::Arc;
use symspmv_core::auto::{AutoChoice, PlanAdvisor};
use symspmv_core::{ParallelSpmv, SymSpmv, SymSpmvError};
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::{CooMatrix, Val};

/// A policy that turns a matrix into a ready SpMV kernel on a given
/// context, reporting how the configuration was chosen. Object-safe so
/// drivers can hold `&dyn KernelChooser` for either the cost model or a
/// plan store without generics.
pub trait KernelChooser {
    /// Builds the kernel this policy selects for `coo` on `ctx`.
    fn build(
        &self,
        coo: &CooMatrix,
        ctx: &Arc<ExecutionContext>,
    ) -> Result<(Box<dyn ParallelSpmv>, AutoChoice), SymSpmvError>;
}

/// The advisor-free default policy: [`SymSpmv::auto`]'s Eq. 1–2/3–6 cost
/// model decides, no store is consulted.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModelChooser;

impl KernelChooser for CostModelChooser {
    fn build(
        &self,
        coo: &CooMatrix,
        ctx: &Arc<ExecutionContext>,
    ) -> Result<(Box<dyn ParallelSpmv>, AutoChoice), SymSpmvError> {
        let (engine, choice) = SymSpmv::auto(ctx, coo)?;
        Ok((Box::new(engine), choice))
    }
}

/// Adapts any [`PlanAdvisor`] (e.g. the persisted plan store) into a
/// chooser: consult the advisor first, fall back to the cost model on a
/// miss — the [`SymSpmv::auto_with`] contract.
#[derive(Clone, Copy)]
pub struct AdvisorChooser<'a>(pub &'a dyn PlanAdvisor);

impl KernelChooser for AdvisorChooser<'_> {
    fn build(
        &self,
        coo: &CooMatrix,
        ctx: &Arc<ExecutionContext>,
    ) -> Result<(Box<dyn ParallelSpmv>, AutoChoice), SymSpmvError> {
        let (engine, choice) = SymSpmv::auto_with(ctx, coo, Some(self.0))?;
        Ok((Box::new(engine), choice))
    }
}

/// The outcome of an auto-kernel solve: the solve report plus the plan
/// decision it ran under.
#[derive(Debug)]
pub struct AutoSolve {
    /// The CG/PCG outcome.
    pub outcome: SolveOutcome,
    /// Which plan served the solve, and whether it came from the store or
    /// the cost model.
    pub choice: AutoChoice,
}

/// Runs non-preconditioned CG on a kernel built by `chooser`.
pub fn cg_auto(
    chooser: &dyn KernelChooser,
    coo: &CooMatrix,
    ctx: &Arc<ExecutionContext>,
    b: &[Val],
    x: &mut [Val],
    config: &CgConfig,
) -> Result<AutoSolve, SymSpmvError> {
    let (mut kernel, choice) = chooser.build(coo, ctx)?;
    let outcome = cg(kernel.as_mut(), b, x, config);
    Ok(AutoSolve { outcome, choice })
}

/// Runs Jacobi-preconditioned CG on a kernel built by `chooser`; the
/// diagonal is extracted from `coo`.
pub fn pcg_jacobi_auto(
    chooser: &dyn KernelChooser,
    coo: &CooMatrix,
    ctx: &Arc<ExecutionContext>,
    b: &[Val],
    x: &mut [Val],
    config: &CgConfig,
) -> Result<AutoSolve, SymSpmvError> {
    let (mut kernel, choice) = chooser.build(coo, ctx)?;
    let diag = diagonal_of(coo);
    let outcome = pcg_jacobi(kernel.as_mut(), &diag, b, x, config);
    Ok(AutoSolve { outcome, choice })
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_core::auto::PlanSource;
    use symspmv_sparse::gen;

    #[test]
    fn cg_auto_solves_on_the_cost_model_choice() {
        let coo = gen::laplacian_2d(14, 14);
        let ctx = ExecutionContext::new(2);
        let n = coo.nrows() as usize;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let solve = cg_auto(
            &CostModelChooser,
            &coo,
            &ctx,
            &b,
            &mut x,
            &CgConfig::default(),
        )
        .unwrap();
        assert!(solve.outcome.converged, "2-D Laplacian CG must converge");
        assert_eq!(solve.choice.source, PlanSource::CostModel);
    }

    #[test]
    fn pcg_auto_solves_and_reports_the_choice() {
        let coo = gen::laplacian_2d(12, 12);
        let ctx = ExecutionContext::new(2);
        let n = coo.nrows() as usize;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let solve = pcg_jacobi_auto(
            &CostModelChooser,
            &coo,
            &ctx,
            &b,
            &mut x,
            &CgConfig::default(),
        )
        .unwrap();
        assert!(solve.outcome.converged);
        assert_eq!(solve.choice.spec.nthreads, 2);
    }
}
