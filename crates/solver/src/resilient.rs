//! Resilient solver entry points: bounded retry and degraded-mode serial
//! reruns for [`cg`](crate::cg::cg), [`pcg_jacobi`](crate::pcg::pcg_jacobi)
//! and [`block_cg`](crate::block_cg::block_cg).
//!
//! The plain solvers call the *panicking* kernel path (`spmv`/`spmm`) and
//! the pool-backed vector operations, so a worker death or a supervision
//! interrupt unwinds out of the whole solve. The wrappers here catch that
//! unwind, classify it with [`classify_unwind`] (the same taxonomy as
//! `try_spmv`), and then apply the resilience ladder of DESIGN.md §16:
//!
//! 1. **Retry** — the initial guess is restored and the solve is re-run
//!    under the caller's [`RetryPolicy`] (transient failures only: a
//!    worker panic, whose worker the supervisor has already respawned).
//! 2. **Degrade** — when the policy is exhausted, the pool is Wedged, or
//!    a deadline overran, the solve is re-run *serially* on the
//!    [`FallbackKernel`]: serial SpMV and serial vector loops, touching
//!    neither the worker pool nor the arena, so it completes even while a
//!    wedged round is draining.
//! 3. **Report** — cancellation and numerical breakdowns are never
//!    retried or degraded: cancellation returns the typed error (with the
//!    caller's `x` restored to the initial guess), and breakdowns come
//!    back as a normal [`SolveOutcome`] / per-lane status, exactly as the
//!    plain solvers report them.
//!
//! The serial rerun re-associates the vector reductions (a serial sum
//! instead of the pool's per-thread partials), so its iterates are not
//! bit-identical to the parallel solve — it is a fresh, well-formed CG on
//! the same operator, and the tests bound both solutions against the same
//! reference.

use crate::block_cg::{block_cg, BlockSolveOutcome, LaneOutcome};
use crate::cg::{cg, CgConfig, SolveOutcome, SolveStatus, DIVERGENCE_GROWTH};
use crate::pcg::pcg_jacobi;
use std::sync::Arc;
use std::time::Duration;
use symspmv_core::{
    classify_unwind, fallback_worthy, FallbackKernel, ParallelSpmm, ParallelSpmv, RetryPolicy,
    Served, SymSpmvError, VectorBlock,
};
use symspmv_runtime::timing::Stopwatch;
use symspmv_runtime::{ExecutionContext, PhaseTimes, PoolHealth, Supervision};
use symspmv_sparse::Val;

/// A solve outcome annotated with *how* it was produced: by the parallel
/// kernel (possibly after retries) or by the degraded-mode serial rerun.
#[derive(Debug, Clone)]
pub struct ServedSolve<O> {
    /// The solve outcome (per-solver type).
    pub outcome: O,
    /// How the solve was served.
    pub served: Served,
}

impl<O> ServedSolve<O> {
    /// `true` when the solve was served by the serial fallback.
    pub fn is_fallback(&self) -> bool {
        self.served.is_fallback()
    }
}

/// Runs one solve attempt under `catch_unwind`, classifying a worker
/// panic or supervision interrupt into its typed error (caller-thread
/// panics resume unwinding).
fn attempt<T>(ctx: &ExecutionContext, f: impl FnOnce() -> T) -> Result<T, SymSpmvError> {
    // Clear any stale record so a pre-existing panic from an unrelated
    // kernel on the same context is not misattributed to this solve.
    let _ = ctx.take_last_panic();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(classify_unwind(ctx, payload)),
    }
}

/// Solves `A·x = b` with CG resiliently: retried per `policy` on worker
/// death, re-run serially on `fallback` when the parallel path is lost.
///
/// `sup` (deadline and/or cancellation token) is installed on the
/// kernel's context for the parallel attempts and cleared before the
/// degraded rerun — a deadline that already killed the parallel solve
/// must not also kill the serial one, since late serving is the point.
///
/// On `Err` (cancellation, or a non-pool error), `x` is restored to the
/// initial guess. Numerical breakdowns are *not* errors here: they come
/// back as `Ok` with a breakdown [`SolveStatus`], exactly like
/// [`cg`], and are never retried (they would reproduce identically).
pub fn resilient_cg<K: ParallelSpmv + ?Sized>(
    kernel: &mut K,
    fallback: &mut FallbackKernel,
    b: &[Val],
    x: &mut [Val],
    config: &CgConfig,
    policy: &RetryPolicy,
    sup: Option<Supervision>,
) -> Result<ServedSolve<SolveOutcome>, SymSpmvError> {
    assert_eq!(
        kernel.n(),
        ParallelSpmv::n(fallback),
        "fallback must represent the same matrix as the kernel"
    );
    let ctx = Arc::clone(kernel.context());
    let x0 = x.to_vec();
    if ctx.health() == PoolHealth::Wedged {
        return Ok(serve_fallback_scalar(
            fallback,
            None,
            b,
            x,
            &x0,
            config,
            SymSpmvError::PoolWedged,
        ));
    }
    let result = {
        let _guard = sup.map(|s| ctx.supervise(s));
        policy.run(|_| {
            x.copy_from_slice(&x0);
            attempt(&ctx, || cg(kernel, b, x, config))
        })
    };
    match result {
        Ok((outcome, attempts)) => Ok(ServedSolve {
            outcome,
            served: Served::Parallel { attempts },
        }),
        Err(e) if fallback_worthy(&e) => {
            Ok(serve_fallback_scalar(fallback, None, b, x, &x0, config, e))
        }
        Err(e) => {
            x.copy_from_slice(&x0);
            Err(e)
        }
    }
}

/// Solves `A·x = b` with Jacobi-preconditioned CG resiliently; `diag`
/// must be the (positive) diagonal of `A`. Semantics are identical to
/// [`resilient_cg`]; the degraded rerun applies the same preconditioner
/// serially.
// One over the clippy arity limit: this mirrors pcg_jacobi's five solve
// parameters plus the two resilience knobs shared by every wrapper here.
#[allow(clippy::too_many_arguments)]
pub fn resilient_pcg_jacobi<K: ParallelSpmv + ?Sized>(
    kernel: &mut K,
    fallback: &mut FallbackKernel,
    diag: &[Val],
    b: &[Val],
    x: &mut [Val],
    config: &CgConfig,
    policy: &RetryPolicy,
    sup: Option<Supervision>,
) -> Result<ServedSolve<SolveOutcome>, SymSpmvError> {
    assert_eq!(
        kernel.n(),
        ParallelSpmv::n(fallback),
        "fallback must represent the same matrix as the kernel"
    );
    assert!(
        diag.iter().all(|&d| d > 0.0),
        "Jacobi needs a positive diagonal"
    );
    let inv_diag: Vec<Val> = diag.iter().map(|d| 1.0 / d).collect();
    let ctx = Arc::clone(kernel.context());
    let x0 = x.to_vec();
    if ctx.health() == PoolHealth::Wedged {
        return Ok(serve_fallback_scalar(
            fallback,
            Some(&inv_diag),
            b,
            x,
            &x0,
            config,
            SymSpmvError::PoolWedged,
        ));
    }
    let result = {
        let _guard = sup.map(|s| ctx.supervise(s));
        policy.run(|_| {
            x.copy_from_slice(&x0);
            attempt(&ctx, || pcg_jacobi(kernel, diag, b, x, config))
        })
    };
    match result {
        Ok((outcome, attempts)) => Ok(ServedSolve {
            outcome,
            served: Served::Parallel { attempts },
        }),
        Err(e) if fallback_worthy(&e) => Ok(serve_fallback_scalar(
            fallback,
            Some(&inv_diag),
            b,
            x,
            &x0,
            config,
            e,
        )),
        Err(e) => {
            x.copy_from_slice(&x0);
            Err(e)
        }
    }
}

/// Solves the `k` systems `A·x_j = b_j` with block CG resiliently.
/// Semantics are identical to [`resilient_cg`]; the degraded rerun
/// solves the lanes one at a time with the serial scalar CG.
pub fn resilient_block_cg<K: ParallelSpmm + ParallelSpmv + ?Sized>(
    kernel: &mut K,
    fallback: &mut FallbackKernel,
    b: &VectorBlock,
    x: &mut VectorBlock,
    config: &CgConfig,
    policy: &RetryPolicy,
    sup: Option<Supervision>,
) -> Result<ServedSolve<BlockSolveOutcome>, SymSpmvError> {
    assert_eq!(
        kernel.n(),
        ParallelSpmv::n(fallback),
        "fallback must represent the same matrix as the kernel"
    );
    let ctx = Arc::clone(kernel.spmm_context());
    let x0 = x.as_slice().to_vec();
    if ctx.health() == PoolHealth::Wedged {
        return Ok(serve_fallback_block(
            fallback,
            b,
            x,
            &x0,
            config,
            SymSpmvError::PoolWedged,
        ));
    }
    let result = {
        let _guard = sup.map(|s| ctx.supervise(s));
        policy.run(|_| {
            x.as_mut_slice().copy_from_slice(&x0);
            attempt(&ctx, || block_cg(kernel, b, x, config))
        })
    };
    match result {
        Ok((outcome, attempts)) => Ok(ServedSolve {
            outcome,
            served: Served::Parallel { attempts },
        }),
        Err(e) if fallback_worthy(&e) => Ok(serve_fallback_block(fallback, b, x, &x0, config, e)),
        Err(e) => {
            x.as_mut_slice().copy_from_slice(&x0);
            Err(e)
        }
    }
}

fn serve_fallback_scalar(
    fallback: &mut FallbackKernel,
    inv_diag: Option<&[Val]>,
    b: &[Val],
    x: &mut [Val],
    x0: &[Val],
    config: &CgConfig,
    cause: SymSpmvError,
) -> ServedSolve<SolveOutcome> {
    x.copy_from_slice(x0);
    let outcome = serial_solve(fallback, inv_diag, b, x, config);
    fallback.context().ledger_add(&outcome.times);
    ServedSolve {
        outcome,
        served: Served::Fallback { cause },
    }
}

fn serve_fallback_block(
    fallback: &mut FallbackKernel,
    b: &VectorBlock,
    x: &mut VectorBlock,
    x0: &[Val],
    config: &CgConfig,
    cause: SymSpmvError,
) -> ServedSolve<BlockSolveOutcome> {
    x.as_mut_slice().copy_from_slice(x0);
    let n = b.n();
    let lanes = b.lanes();
    let mut total = PhaseTimes::new();
    let mut outcomes = Vec::with_capacity(lanes);
    let mut iterations = 0;
    let mut bj = vec![0.0; n];
    let mut xj = vec![0.0; n];
    for j in 0..lanes {
        b.copy_lane_into(j, &mut bj);
        x.copy_lane_into(j, &mut xj);
        let out = serial_solve(fallback, None, &bj, &mut xj, config);
        x.copy_lane_from(j, &xj);
        iterations = iterations.max(out.iterations);
        total.multiply += out.times.multiply;
        total.vector_ops += out.times.vector_ops;
        outcomes.push(LaneOutcome {
            iterations: out.iterations,
            converged: out.converged,
            status: out.status,
            residual_norm: out.residual_norm,
            history: out.history,
        });
    }
    total.preprocess = fallback.times().preprocess;
    fallback.context().ledger_add(&total);
    ServedSolve {
        outcome: BlockSolveOutcome {
            lanes: outcomes,
            iterations,
            times: total,
        },
        served: Served::Fallback { cause },
    }
}

fn serial_dot(a: &[Val], b: &[Val]) -> Val {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// The degraded-mode solve: plain (optionally Jacobi-preconditioned) CG
/// with serial vector loops and the fallback's serial SpMV. No pool, no
/// arena — plain allocations, so it shares nothing with the machinery
/// that just failed. Breakdown detection (NotSpd, divergence, non-finite)
/// matches the parallel solvers exactly.
fn serial_solve(
    fallback: &mut FallbackKernel,
    inv_diag: Option<&[Val]>,
    b: &[Val],
    x: &mut [Val],
    config: &CgConfig,
) -> SolveOutcome {
    let n = ParallelSpmv::n(fallback);
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);

    let preexisting = fallback.times();
    let mut vec_time = Duration::ZERO;

    let mut r = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut ap = vec![0.0; n];
    fallback.spmv(x, &mut r);
    let sw = Stopwatch::start();
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    apply_precond(inv_diag, &r, &mut z);
    p.copy_from_slice(&z);

    let b_norm_sq = serial_dot(b, b);
    let tol_sq = config.rel_tol * config.rel_tol * b_norm_sq;
    let mut rz = serial_dot(&r, &z);
    let mut r_norm_sq = serial_dot(&r, &r);
    let mut history = Vec::new();
    if config.record_history {
        history.push(r_norm_sq.sqrt());
    }
    vec_time += sw.elapsed();

    let rs_initial = r_norm_sq;
    let mut iterations = 0;
    let mut converged = config.rel_tol > 0.0 && r_norm_sq <= tol_sq;
    let mut breakdown: Option<SolveStatus> = None;
    while iterations < config.max_iters && !converged && breakdown.is_none() {
        fallback.spmv(&p, &mut ap);
        let sw = Stopwatch::start();
        let pap = serial_dot(&p, &ap);
        if !pap.is_finite() {
            breakdown = Some(SolveStatus::NonFiniteResidual);
        } else if pap <= 0.0 && r_norm_sq > 0.0 {
            breakdown = Some(SolveStatus::NotSpd { pap });
        } else {
            let alpha = if pap != 0.0 { rz / pap } else { 0.0 };
            for (xi, &pi) in x.iter_mut().zip(&p) {
                *xi += alpha * pi;
            }
            for (ri, &api) in r.iter_mut().zip(&ap) {
                *ri -= alpha * api;
            }
            apply_precond(inv_diag, &r, &mut z);
            let rz_new = serial_dot(&r, &z);
            let beta = if rz != 0.0 { rz_new / rz } else { 0.0 };
            for (pi, &zi) in p.iter_mut().zip(&z) {
                *pi = zi + beta * *pi;
            }
            rz = rz_new;
            r_norm_sq = serial_dot(&r, &r);
            if !r_norm_sq.is_finite() {
                breakdown = Some(SolveStatus::NonFiniteResidual);
            } else if rs_initial > 0.0
                && r_norm_sq > DIVERGENCE_GROWTH * DIVERGENCE_GROWTH * rs_initial
            {
                breakdown = Some(SolveStatus::Diverged {
                    growth: (r_norm_sq / rs_initial).sqrt(),
                });
            }
        }
        vec_time += sw.elapsed();
        if breakdown.is_some() {
            break;
        }
        if config.record_history {
            history.push(r_norm_sq.sqrt());
        }
        iterations += 1;
        if config.rel_tol > 0.0 && r_norm_sq <= tol_sq {
            converged = true;
        }
    }

    let after = fallback.times();
    let times = PhaseTimes {
        multiply: after.multiply - preexisting.multiply,
        reduce: Duration::ZERO,
        vector_ops: vec_time,
        preprocess: preexisting.preprocess,
    };
    let status = breakdown.unwrap_or(if converged {
        SolveStatus::Converged
    } else {
        SolveStatus::MaxIterations
    });
    SolveOutcome {
        iterations,
        converged,
        status,
        residual_norm: r_norm_sq.sqrt(),
        times,
        history,
    }
}

/// `z = M⁻¹·r` (Jacobi) or `z = r` when unpreconditioned.
fn apply_precond(inv_diag: Option<&[Val]>, r: &[Val], z: &mut [Val]) {
    match inv_diag {
        Some(inv) => {
            for ((zi, &ri), &di) in z.iter_mut().zip(r).zip(inv) {
                *zi = ri * di;
            }
        }
        None => z.copy_from_slice(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::diagonal_of;
    use std::borrow::Cow;
    use symspmv_core::{CsrParallel, ReductionMethod, SymFormat, SymSpmv};
    use symspmv_runtime::{CancelToken, ExecutionContext};
    use symspmv_sparse::dense::seeded_vector;
    use symspmv_sparse::{CooMatrix, SymmetryKind};

    /// Wraps a kernel and kills a worker on the first `remaining` spmv (or
    /// spmm) calls — the panic surfaces exactly like a genuine worker
    /// death: recorded on the context, worker respawned by the pool.
    struct Flaky<K> {
        inner: K,
        remaining: usize,
    }

    impl<K: ParallelSpmv> Flaky<K> {
        fn trip(&mut self) {
            if self.remaining > 0 {
                self.remaining -= 1;
                self.inner.context().run(&|tid| {
                    if tid == 0 {
                        panic!("injected worker fault");
                    }
                });
            }
        }
    }

    impl<K: ParallelSpmv> ParallelSpmv for Flaky<K> {
        fn spmv(&mut self, x: &[Val], y: &mut [Val]) {
            self.trip();
            self.inner.spmv(x, y);
        }
        fn n(&self) -> usize {
            self.inner.n()
        }
        fn nnz_full(&self) -> usize {
            self.inner.nnz_full()
        }
        fn size_bytes(&self) -> usize {
            self.inner.size_bytes()
        }
        fn times(&self) -> symspmv_runtime::PhaseTimes {
            self.inner.times()
        }
        fn reset_times(&mut self) {
            self.inner.reset_times();
        }
        fn name(&self) -> Cow<'static, str> {
            Cow::Borrowed("flaky")
        }
        fn context(&self) -> &Arc<ExecutionContext> {
            self.inner.context()
        }
    }

    impl<K: ParallelSpmv + ParallelSpmm> ParallelSpmm for Flaky<K> {
        fn spmm(&mut self, x: &VectorBlock, y: &mut VectorBlock) {
            self.trip();
            self.inner.spmm(x, y);
        }
        fn spmm_context(&self) -> &Arc<ExecutionContext> {
            self.inner.spmm_context()
        }
    }

    fn fast_policy(attempts: usize) -> RetryPolicy {
        RetryPolicy::new(attempts).with_backoff(Duration::from_micros(1), Duration::from_micros(5))
    }

    fn setup(p: usize) -> (CooMatrix, Arc<ExecutionContext>, FallbackKernel) {
        let coo = symspmv_sparse::gen::banded_random(300, 12, 7.0, 17);
        let ctx = ExecutionContext::new(p);
        let fb = FallbackKernel::from_coo_kind(&coo, SymmetryKind::Symmetric, Arc::clone(&ctx))
            .expect("seed matrix is symmetric");
        (coo, ctx, fb)
    }

    #[test]
    fn clean_solve_is_served_parallel_and_matches_plain_cg() {
        let (coo, ctx, mut fb) = setup(3);
        let n = 300;
        let b = seeded_vector(n, 5);
        let cfg = CgConfig::default();

        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let mut x_plain = vec![0.0; n];
        let plain = cg(&mut k, &b, &mut x_plain, &cfg);
        assert!(plain.converged);

        let mut x = vec![0.0; n];
        let served = resilient_cg(&mut k, &mut fb, &b, &mut x, &cfg, &fast_policy(3), None)
            .expect("clean solve");
        assert_eq!(served.served, Served::Parallel { attempts: 1 });
        assert!(!served.is_fallback());
        assert_eq!(served.outcome.iterations, plain.iterations);
        for (a, bb) in x.iter().zip(&x_plain) {
            assert_eq!(a.to_bits(), bb.to_bits(), "deterministic rerun");
        }
    }

    #[test]
    fn transient_worker_deaths_are_retried_to_success() {
        let (coo, ctx, mut fb) = setup(4);
        let n = 300;
        let b = seeded_vector(n, 9);
        let cfg = CgConfig::default();

        let mut x_ref = vec![0.0; n];
        let mut kr = CsrParallel::from_coo(&coo, &ctx);
        assert!(cg(&mut kr, &b, &mut x_ref, &cfg).converged);

        // The first two attempts die on their very first SpMV; the third
        // runs clean from the restored initial guess.
        let mut k = Flaky {
            inner: CsrParallel::from_coo(&coo, &ctx),
            remaining: 2,
        };
        let mut x = vec![0.0; n];
        let served = resilient_cg(&mut k, &mut fb, &b, &mut x, &cfg, &fast_policy(3), None)
            .expect("third attempt succeeds");
        assert_eq!(served.served, Served::Parallel { attempts: 3 });
        assert!(served.outcome.converged);
        assert_eq!(ctx.pool_respawns(), 2, "each death respawned its worker");
        for (a, bb) in x.iter().zip(&x_ref) {
            assert!((a - bb).abs() < 1e-6, "{a} vs {bb}");
        }
    }

    #[test]
    fn exhausted_retries_degrade_to_the_serial_fallback() {
        let (coo, ctx, mut fb) = setup(2);
        let n = 300;
        let b = seeded_vector(n, 2);
        let cfg = CgConfig::default();

        let mut x_ref = vec![0.0; n];
        let mut kr = CsrParallel::from_coo(&coo, &ctx);
        assert!(cg(&mut kr, &b, &mut x_ref, &cfg).converged);

        let mut k = Flaky {
            inner: CsrParallel::from_coo(&coo, &ctx),
            remaining: usize::MAX,
        };
        let mut x = vec![0.0; n];
        let served = resilient_cg(&mut k, &mut fb, &b, &mut x, &cfg, &fast_policy(2), None)
            .expect("fallback keeps the request available");
        match &served.served {
            Served::Fallback {
                cause: SymSpmvError::RetriesExhausted { attempts, .. },
            } => assert_eq!(*attempts, 2),
            other => panic!("expected exhausted-retries fallback, got {other:?}"),
        }
        assert!(served.outcome.converged, "{:?}", served.outcome.status);
        for (a, bb) in x.iter().zip(&x_ref) {
            assert!((a - bb).abs() < 1e-6, "{a} vs {bb}");
        }
    }

    #[test]
    fn expired_deadline_degrades_to_the_serial_fallback() {
        let (coo, ctx, mut fb) = setup(2);
        let n = 300;
        let b = seeded_vector(n, 3);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let mut x = vec![0.0; n];
        let served = resilient_cg(
            &mut k,
            &mut fb,
            &b,
            &mut x,
            &CgConfig::default(),
            &fast_policy(3),
            Some(Supervision::deadline_within(Duration::ZERO)),
        )
        .expect("late serving preserves availability");
        assert!(matches!(
            served.served,
            Served::Fallback {
                cause: SymSpmvError::DeadlineExceeded { .. }
            }
        ));
        assert!(served.outcome.converged);
    }

    #[test]
    fn cancellation_returns_the_typed_error_and_restores_x() {
        let (coo, ctx, mut fb) = setup(2);
        let n = 300;
        let b = seeded_vector(n, 4);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let token = CancelToken::new();
        token.cancel();
        let x0 = seeded_vector(n, 77);
        let mut x = x0.clone();
        let err = resilient_cg(
            &mut k,
            &mut fb,
            &b,
            &mut x,
            &CgConfig::default(),
            &fast_policy(3),
            Some(Supervision::with_cancel(token)),
        )
        .unwrap_err();
        assert_eq!(err, SymSpmvError::Cancelled);
        assert_eq!(x, x0, "initial guess restored on error return");
        // The supervision guard cleared on the error path: a plain solve
        // on the same context runs to completion.
        let mut x2 = vec![0.0; n];
        assert!(cg(&mut k, &b, &mut x2, &CgConfig::default()).converged);
    }

    #[test]
    fn numerical_breakdown_passes_through_without_retry_or_fallback() {
        let base = symspmv_sparse::gen::laplacian_2d(8, 8);
        let mut coo = CooMatrix::new(64, 64);
        for (r, c, v) in base.iter() {
            coo.push(r, c, -v);
        }
        coo.canonicalize();
        let ctx = ExecutionContext::new(2);
        let mut fb = FallbackKernel::from_coo_kind(&coo, SymmetryKind::Symmetric, Arc::clone(&ctx))
            .expect("symmetric");
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let b = seeded_vector(64, 4);
        let mut x = vec![0.0; 64];
        let served = resilient_cg(
            &mut k,
            &mut fb,
            &b,
            &mut x,
            &CgConfig::default(),
            &fast_policy(5),
            None,
        )
        .expect("breakdown is a report, not an error");
        assert_eq!(served.served, Served::Parallel { attempts: 1 });
        assert!(served.outcome.status.is_breakdown());
        assert!(matches!(served.outcome.status, SolveStatus::NotSpd { .. }));
    }

    #[test]
    fn pcg_variant_retries_and_falls_back_with_the_preconditioner() {
        let (coo, ctx, mut fb) = setup(2);
        let n = 300;
        let b = seeded_vector(n, 6);
        let diag = diagonal_of(&coo);
        let cfg = CgConfig::default();

        let mut x_ref = vec![0.0; n];
        let mut kr = CsrParallel::from_coo(&coo, &ctx);
        assert!(pcg_jacobi(&mut kr, &diag, &b, &mut x_ref, &cfg).converged);

        // Clean path.
        let mut x = vec![0.0; n];
        let served = resilient_pcg_jacobi(
            &mut kr,
            &mut fb,
            &diag,
            &b,
            &mut x,
            &cfg,
            &fast_policy(3),
            None,
        )
        .expect("clean pcg");
        assert_eq!(served.served, Served::Parallel { attempts: 1 });

        // Permanently flaky → serial preconditioned rerun.
        let mut k = Flaky {
            inner: CsrParallel::from_coo(&coo, &ctx),
            remaining: usize::MAX,
        };
        let mut x = vec![0.0; n];
        let served = resilient_pcg_jacobi(
            &mut k,
            &mut fb,
            &diag,
            &b,
            &mut x,
            &cfg,
            &fast_policy(2),
            None,
        )
        .expect("fallback");
        assert!(served.is_fallback());
        assert!(served.outcome.converged);
        for (a, bb) in x.iter().zip(&x_ref) {
            assert!((a - bb).abs() < 1e-6, "{a} vs {bb}");
        }
    }

    #[test]
    fn block_variant_serves_every_lane_from_the_fallback() {
        let (coo, ctx, mut fb) = setup(3);
        let n = 300;
        let lanes = 4;
        let b = VectorBlock::seeded(n, lanes, 30);
        let cfg = CgConfig::default();

        let mut inner = SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss)
            .expect("seed matrix builds");

        // Clean path first.
        let mut x = VectorBlock::zeros(n, lanes);
        let served =
            resilient_block_cg(&mut inner, &mut fb, &b, &mut x, &cfg, &fast_policy(3), None)
                .expect("clean block solve");
        assert_eq!(served.served, Served::Parallel { attempts: 1 });
        assert!(served.outcome.all_converged());
        let x_ref = x.as_slice().to_vec();

        // Permanently flaky → per-lane serial reruns.
        let mut k = Flaky {
            inner,
            remaining: usize::MAX,
        };
        let mut x = VectorBlock::zeros(n, lanes);
        let served = resilient_block_cg(&mut k, &mut fb, &b, &mut x, &cfg, &fast_policy(2), None)
            .expect("fallback");
        assert!(served.is_fallback());
        assert!(served.outcome.all_converged());
        assert_eq!(served.outcome.lanes.len(), lanes);
        for (a, bb) in x.as_slice().iter().zip(&x_ref) {
            assert!((a - bb).abs() < 1e-6, "{a} vs {bb}");
        }
    }
}
