#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! Iterative solver layer: the non-preconditioned Conjugate Gradient method
//! of §II-C / Alg. 1, used by the paper's end-to-end evaluation (§V-F,
//! Fig. 14).
//!
//! The solver is generic over the kernel interface
//! [`symspmv_core::ParallelSpmv`], so CSR, CSX, SSS (any reduction method)
//! and CSX-Sym all plug in unchanged, and it keeps the same per-phase
//! breakdown the paper charts: SpMV multiply, SpMV reduction, vector
//! operations, and format preprocessing.

pub mod auto;
pub mod block_cg;
pub mod cg;
pub mod pcg;
pub mod resilient;
pub mod vecops;

pub use auto::{
    cg_auto, pcg_jacobi_auto, AdvisorChooser, AutoSolve, CostModelChooser, KernelChooser,
};
pub use block_cg::{block_cg, BlockSolveOutcome, LaneOutcome};
pub use cg::{cg, CgConfig, CgResult, SolveOutcome, SolveStatus};
pub use pcg::{diagonal_of, pcg_jacobi};
pub use resilient::{resilient_block_cg, resilient_cg, resilient_pcg_jacobi, ServedSolve};
