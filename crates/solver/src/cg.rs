//! Non-preconditioned Conjugate Gradient (Alg. 1).
//!
//! One SpMV per iteration plus a handful of vector operations — exactly the
//! cost profile §V-F dissects. (Note: line 8 of the paper's Alg. 1 listing
//! drops the `A·` factor in the residual update; we implement the standard,
//! correct recurrence `r ← r − a·A·p`.)
//!
//! The solver runs entirely on the kernel's
//! [`ExecutionContext`](symspmv_runtime::ExecutionContext): the
//! residual/direction/product vectors are scratch leases from the context's
//! arena (recycled across solves), the vector operations run on the same
//! worker pool as the SpMV, and the per-phase breakdown is accumulated into
//! the context's ledger.

use crate::vecops;
use std::sync::Arc;
use symspmv_core::{ParallelSpmv, SymSpmvError};
use symspmv_runtime::timing::time_into;
use symspmv_runtime::PhaseTimes;
use symspmv_sparse::Val;

/// Residual growth (in norms, relative to the initial residual) beyond
/// which the iteration is declared divergent. CG on an SPD system is
/// monotone in the A-norm; eight orders of magnitude of growth in the
/// 2-norm means the recurrence has left SPD territory.
pub(crate) const DIVERGENCE_GROWTH: f64 = 1e8;

/// CG stopping configuration.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Maximum iterations (the paper's Fig. 14 uses a fixed 2048).
    pub max_iters: usize,
    /// Relative residual tolerance `‖r‖/‖b‖`; set to `0.0` to always run
    /// `max_iters` iterations (fixed-work mode, as in Fig. 14).
    pub rel_tol: f64,
    /// Record `‖r‖` after every iteration.
    pub record_history: bool,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            max_iters: 1000,
            rel_tol: 1e-10,
            record_history: false,
        }
    }
}

/// How a solve ended.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SolveStatus {
    /// The relative residual tolerance was reached.
    Converged,
    /// The iteration budget ran out before the tolerance was reached (this
    /// is the *expected* outcome in fixed-work mode, `rel_tol == 0`).
    MaxIterations,
    /// Breakdown: `pᵀAp ≤ 0` with a non-zero residual — the operator is
    /// not symmetric positive definite.
    NotSpd {
        /// The offending curvature value.
        pap: f64,
    },
    /// The residual norm grew more than `DIVERGENCE_GROWTH` (1e8)× over its
    /// initial value.
    Diverged {
        /// Residual growth factor `‖r_k‖ / ‖r_0‖` at detection.
        growth: f64,
    },
    /// The residual or curvature became NaN or infinite.
    NonFiniteResidual,
}

impl SolveStatus {
    /// Whether this status is a numerical failure (breakdown, divergence,
    /// non-finite values) as opposed to a normal termination.
    pub fn is_breakdown(&self) -> bool {
        !matches!(self, SolveStatus::Converged | SolveStatus::MaxIterations)
    }
}

/// Outcome of a CG/PCG solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the relative tolerance was reached (equivalent to
    /// `status == SolveStatus::Converged`; kept for call-site brevity).
    pub converged: bool,
    /// How the solve ended, including numerical-breakdown detail.
    pub status: SolveStatus,
    /// Final residual norm `‖b − A·x‖` (recurrence residual).
    pub residual_norm: f64,
    /// Phase breakdown: SpMV multiply + reduce (from the kernel),
    /// vector operations, and the kernel's preprocessing.
    pub times: PhaseTimes,
    /// Residual-norm history (if requested).
    pub history: Vec<f64>,
}

/// Former name of [`SolveOutcome`].
pub type CgResult = SolveOutcome;

impl SolveOutcome {
    /// Converts a breakdown status into the corresponding
    /// [`SymSpmvError`], passing normal terminations (converged or
    /// max-iterations) through as `Ok` — for callers that treat numerical
    /// failure as an error rather than a report.
    pub fn into_result(self) -> Result<SolveOutcome, SymSpmvError> {
        match self.status {
            SolveStatus::NotSpd { pap } => Err(SymSpmvError::NotSpd {
                iteration: self.iterations,
                pap,
            }),
            SolveStatus::Diverged { growth } => Err(SymSpmvError::Diverged {
                iteration: self.iterations,
                relative_residual: growth,
            }),
            SolveStatus::NonFiniteResidual => Err(SymSpmvError::NonFiniteResidual {
                iteration: self.iterations,
            }),
            _ => Ok(self),
        }
    }
}

/// Solves `A·x = b` with CG, starting from the initial guess in `x`.
///
/// The kernel's phase clocks are used to attribute SpMV multiply/reduce
/// time; vector operations are timed here. The kernel's *pre-existing*
/// accumulated times (e.g. format preprocessing at construction) are
/// reported in the `preprocess` slot. The solve's breakdown is also added
/// to the context ledger.
pub fn cg<K: ParallelSpmv + ?Sized>(
    kernel: &mut K,
    b: &[Val],
    x: &mut [Val],
    config: &CgConfig,
) -> CgResult {
    let n = kernel.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let ctx = Arc::clone(kernel.context());

    let preexisting = kernel.times();
    let mut vec_time = std::time::Duration::ZERO;

    // r = b − A·x ; p = r. All three work vectors are arena scratch.
    let mut r = ctx.lease_scratch(n);
    let mut p = ctx.lease_scratch(n);
    let mut ap = ctx.lease_scratch(n);
    kernel.spmv(x, &mut r);
    time_into(&mut vec_time, || {
        vecops::sub_from(b, &mut r);
        p.copy_from_slice(&r);
    });

    let b_norm_sq = vecops::norm2_sq(&ctx, b);
    let tol_sq = config.rel_tol * config.rel_tol * b_norm_sq;
    let mut rs_old = vecops::norm2_sq(&ctx, &r);
    let mut history = Vec::new();
    if config.record_history {
        history.push(rs_old.sqrt());
    }

    let rs_initial = rs_old;
    let mut iterations = 0;
    let mut converged = rs_old <= tol_sq && config.rel_tol > 0.0;
    let mut breakdown: Option<SolveStatus> = None;
    while iterations < config.max_iters && !converged {
        kernel.spmv(&p, &mut ap);
        time_into(&mut vec_time, || {
            let pap = vecops::dot(&ctx, &p, &ap);
            if !pap.is_finite() {
                breakdown = Some(SolveStatus::NonFiniteResidual);
                return;
            }
            // A SPD guarantees pᵀAp > 0 unless p == 0 (residual already
            // zero); a non-positive curvature with residual left means the
            // operator is not SPD — report it instead of emitting garbage.
            if pap <= 0.0 && rs_old > 0.0 {
                breakdown = Some(SolveStatus::NotSpd { pap });
                return;
            }
            let alpha = if pap != 0.0 { rs_old / pap } else { 0.0 };
            vecops::axpy(&ctx, alpha, &p, x);
            vecops::axpy(&ctx, -alpha, &ap, &mut r);
            let rs_new = vecops::norm2_sq(&ctx, &r);
            if !rs_new.is_finite() {
                breakdown = Some(SolveStatus::NonFiniteResidual);
                return;
            }
            if rs_initial > 0.0 && rs_new > DIVERGENCE_GROWTH * DIVERGENCE_GROWTH * rs_initial {
                breakdown = Some(SolveStatus::Diverged {
                    growth: (rs_new / rs_initial).sqrt(),
                });
                rs_old = rs_new;
                return;
            }
            let beta = if rs_old != 0.0 { rs_new / rs_old } else { 0.0 };
            vecops::xpby(&ctx, &r, beta, &mut p);
            rs_old = rs_new;
        });
        if breakdown.is_some() {
            break;
        }
        if config.record_history {
            history.push(rs_old.sqrt());
        }
        iterations += 1;
        if config.rel_tol > 0.0 && rs_old <= tol_sq {
            converged = true;
        }
    }

    // Attribute times: SpMV phases accumulated by the kernel during this
    // solve, vector ops measured here, preprocessing from construction.
    let after = kernel.times();
    let times = PhaseTimes {
        multiply: after.multiply - preexisting.multiply,
        reduce: after.reduce - preexisting.reduce,
        vector_ops: vec_time,
        preprocess: preexisting.preprocess,
    };
    ctx.ledger_add(&times);

    let status = breakdown.unwrap_or(if converged {
        SolveStatus::Converged
    } else {
        SolveStatus::MaxIterations
    });
    SolveOutcome {
        iterations,
        converged,
        status,
        residual_norm: rs_old.sqrt(),
        times,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symspmv_core::{CsrParallel, ReductionMethod, SymFormat, SymSpmv};
    use symspmv_csx::detect::DetectConfig;
    use symspmv_runtime::{ExecutionContext, WorkerPool};
    use symspmv_sparse::dense::seeded_vector;
    use symspmv_sparse::CooMatrix;

    fn residual(coo: &CooMatrix, x: &[Val], b: &[Val]) -> f64 {
        let mut ax = vec![0.0; b.len()];
        let mut c = coo.clone();
        c.canonicalize();
        c.spmv_reference(x, &mut ax);
        ax.iter()
            .zip(b)
            .map(|(a, bb)| (a - bb) * (a - bb))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn solves_laplacian_with_csr() {
        let coo = symspmv_sparse::gen::laplacian_2d(20, 20);
        let n = 400;
        let b = seeded_vector(n, 3);
        let mut x = vec![0.0; n];
        let ctx = ExecutionContext::new(4);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let res = cg(
            &mut k,
            &b,
            &mut x,
            &CgConfig {
                max_iters: 2000,
                rel_tol: 1e-10,
                record_history: true,
            },
        );
        assert!(res.converged, "CG did not converge: {res:?}");
        assert!(residual(&coo, &x, &b) < 1e-6);
        assert!(res.history.len() == res.iterations + 1);
        // History should broadly decrease.
        assert!(res.history.last().unwrap() < &res.history[0]);
    }

    #[test]
    fn all_symmetric_kernels_agree_with_csr() {
        let coo = symspmv_sparse::gen::banded_random(300, 15, 6.0, 11);
        let n = 300;
        let b = seeded_vector(n, 5);
        let cfg = CgConfig {
            max_iters: 1500,
            rel_tol: 1e-9,
            record_history: false,
        };
        let ctx = ExecutionContext::new(3);

        let mut x_ref = vec![0.0; n];
        let mut kr = CsrParallel::from_coo(&coo, &ctx);
        let rr = cg(&mut kr, &b, &mut x_ref, &cfg);
        assert!(rr.converged);

        for method in [
            ReductionMethod::Naive,
            ReductionMethod::EffectiveRanges,
            ReductionMethod::Indexing,
        ] {
            let mut k = SymSpmv::from_coo(&coo, &ctx, method, SymFormat::Sss).unwrap();
            let mut x = vec![0.0; n];
            let r = cg(&mut k, &b, &mut x, &cfg);
            assert!(r.converged, "{method:?} failed to converge");
            for (a, bb) in x.iter().zip(&x_ref) {
                assert!((a - bb).abs() < 1e-5, "{method:?}: {a} vs {bb}");
            }
        }

        let dcfg = DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        };
        let mut k = SymSpmv::from_coo(
            &coo,
            &ctx,
            ReductionMethod::Indexing,
            SymFormat::CsxSym(dcfg),
        )
        .unwrap();
        let mut x = vec![0.0; n];
        let r = cg(&mut k, &b, &mut x, &cfg);
        assert!(r.converged);
        assert!(residual(&coo, &x, &b) < 1e-5);
        // CSX-Sym construction must show up as preprocessing time.
        assert!(r.times.preprocess > std::time::Duration::ZERO);
    }

    #[test]
    fn fixed_iteration_mode_runs_exactly_max_iters() {
        let coo = symspmv_sparse::gen::laplacian_2d(8, 8);
        let ctx = ExecutionContext::new(2);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let b = vec![1.0; 64];
        let mut x = vec![0.0; 64];
        let res = cg(
            &mut k,
            &b,
            &mut x,
            &CgConfig {
                max_iters: 50,
                rel_tol: 0.0,
                record_history: false,
            },
        );
        assert_eq!(res.iterations, 50);
        assert!(!res.converged);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let coo = symspmv_sparse::gen::laplacian_2d(5, 5);
        let ctx = ExecutionContext::new(1);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let b = vec![0.0; 25];
        let mut x = vec![0.0; 25];
        let res = cg(&mut k, &b, &mut x, &CgConfig::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn times_partitioned_by_phase_and_ledgered() {
        let coo = symspmv_sparse::gen::banded_random(600, 10, 6.0, 2);
        let ctx = ExecutionContext::new(2);
        let mut k =
            SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        let b = seeded_vector(600, 1);
        let mut x = vec![0.0; 600];
        ctx.reset_ledger();
        let res = cg(
            &mut k,
            &b,
            &mut x,
            &CgConfig {
                max_iters: 64,
                rel_tol: 0.0,
                record_history: false,
            },
        );
        assert!(res.times.multiply > std::time::Duration::ZERO);
        assert!(res.times.vector_ops > std::time::Duration::ZERO);
        // The solve's breakdown lands on the shared context ledger.
        assert_eq!(ctx.ledger().multiply, res.times.multiply);
    }

    #[test]
    fn negative_definite_operator_reports_not_spd() {
        // -Laplacian is negative definite: pᵀAp < 0 on the very first
        // iteration. The old solver would silently emit garbage iterates.
        let base = symspmv_sparse::gen::laplacian_2d(8, 8);
        let mut coo = CooMatrix::new(64, 64);
        for (r, c, v) in base.iter() {
            coo.push(r, c, -v);
        }
        coo.canonicalize();
        let ctx = ExecutionContext::new(2);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let b = seeded_vector(64, 4);
        let mut x = vec![0.0; 64];
        let res = cg(&mut k, &b, &mut x, &CgConfig::default());
        assert!(!res.converged);
        assert!(res.status.is_breakdown());
        match res.status {
            SolveStatus::NotSpd { pap } => assert!(pap < 0.0),
            other => panic!("expected NotSpd, got {other:?}"),
        }
        match res.into_result() {
            Err(SymSpmvError::NotSpd { pap, .. }) => assert!(pap < 0.0),
            other => panic!("expected SymSpmvError::NotSpd, got {other:?}"),
        }
    }

    #[test]
    fn nan_in_matrix_reports_non_finite_not_garbage() {
        // A NaN planted in the operator poisons the first curvature dot
        // product; the solver must say so instead of iterating on NaNs.
        let mut coo = symspmv_sparse::gen::laplacian_2d(6, 6);
        coo.push(0, 0, f64::NAN);
        coo.canonicalize();
        let ctx = ExecutionContext::new(2);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let b = seeded_vector(36, 8);
        let mut x = vec![0.0; 36];
        let res = cg(&mut k, &b, &mut x, &CgConfig::default());
        assert_eq!(res.status, SolveStatus::NonFiniteResidual);
        assert!(matches!(
            res.into_result(),
            Err(SymSpmvError::NonFiniteResidual { .. })
        ));
    }

    #[test]
    fn normal_terminations_pass_through_into_result() {
        let coo = symspmv_sparse::gen::laplacian_2d(5, 5);
        let ctx = ExecutionContext::new(1);
        let mut k = CsrParallel::from_coo(&coo, &ctx);
        let b = seeded_vector(25, 6);
        let mut x = vec![0.0; 25];
        let res = cg(&mut k, &b, &mut x, &CgConfig::default());
        assert_eq!(res.status, SolveStatus::Converged);
        assert!(!res.status.is_breakdown());
        let ok = res.into_result().expect("converged solve is Ok");
        assert!(ok.converged);

        // Diverged statuses map to the taxonomy with the growth factor.
        let mut diverged = ok;
        diverged.status = SolveStatus::Diverged { growth: 1e9 };
        match diverged.into_result() {
            Err(SymSpmvError::Diverged {
                relative_residual, ..
            }) => assert_eq!(relative_residual, 1e9),
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn full_solve_creates_exactly_one_pool_and_recycles_scratch() {
        let coo = symspmv_sparse::gen::banded_random(500, 12, 6.0, 9);
        let before = WorkerPool::pools_created();
        let ctx = ExecutionContext::new(4);
        let mut k =
            SymSpmv::from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss).unwrap();
        let b = seeded_vector(500, 2);
        let mut x = vec![0.0; 500];
        let cfg = CgConfig {
            max_iters: 32,
            rel_tol: 0.0,
            record_history: false,
        };
        let res1 = cg(&mut k, &b, &mut x, &cfg);
        assert_eq!(
            WorkerPool::pools_created(),
            before + 1,
            "a full CG solve must run on exactly one pool"
        );
        // A second solve leases the same scratch buffers back out of the
        // arena and reaches the identical iterate.
        let free_between = ctx.arena_free_buffers();
        let mut x2 = vec![0.0; 500];
        let res2 = cg(&mut k, &b, &mut x2, &cfg);
        assert_eq!(ctx.arena_free_buffers(), free_between);
        assert_eq!(res1.iterations, res2.iterations);
        for (a, bb) in x.iter().zip(&x2) {
            assert_eq!(a, bb, "scratch reuse must not change the iterates");
        }
    }
}
