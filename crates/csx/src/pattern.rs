//! The 6-bit pattern-id space of the `ctl` flags byte.
//!
//! | id          | meaning                                   |
//! |-------------|-------------------------------------------|
//! | 0, 1, 2     | delta unit, u8 / u16 / u32 column deltas  |
//! | 4 + t·8 + (δ−1) | 1-D run of type `t`, delta δ ∈ 1..=8  |
//! | 36 + 3·(r−2) + (c−2) | dense block r×c, r,c ∈ 2..=4     |
//!
//! 1-D types `t`: 0 horizontal, 1 vertical, 2 diagonal, 3 anti-diagonal.

/// Maximum delta distance encodable in a 1-D run pattern id.
pub const MAX_RUN_DELTA: u8 = 8;

/// Minimum/maximum dense block dimension.
pub const MIN_BLOCK_DIM: u8 = 2;
/// Maximum dense block dimension.
pub const MAX_BLOCK_DIM: u8 = 4;

/// Byte width of a delta unit's column deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaWidth {
    /// One-byte deltas (< 256).
    U8,
    /// Two-byte deltas (< 65 536).
    U16,
    /// Four-byte deltas.
    U32,
}

impl DeltaWidth {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            DeltaWidth::U8 => 1,
            DeltaWidth::U16 => 2,
            DeltaWidth::U32 => 4,
        }
    }

    /// The narrowest width able to represent `delta`.
    pub fn for_delta(delta: u32) -> Self {
        if delta < 1 << 8 {
            DeltaWidth::U8
        } else if delta < 1 << 16 {
            DeltaWidth::U16
        } else {
            DeltaWidth::U32
        }
    }
}

/// The substructure families CSX detects (§IV-A, Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Elements `(r, c + k·δ)` — a run inside one row.
    Horizontal {
        /// Column stride of consecutive elements.
        delta: u8,
    },
    /// Elements `(r + k·δ, c)` — a run inside one column.
    Vertical {
        /// Row stride of consecutive elements.
        delta: u8,
    },
    /// Elements `(r + k·δ, c + k·δ)`.
    Diagonal {
        /// Stride along the diagonal.
        delta: u8,
    },
    /// Elements `(r + k·δ, c − k·δ)`.
    AntiDiagonal {
        /// Stride along the anti-diagonal.
        delta: u8,
    },
    /// A dense `rows × cols` block, stored row-major.
    Block {
        /// Block height (2..=4).
        rows: u8,
        /// Block width (2..=4).
        cols: u8,
    },
}

impl PatternKind {
    /// Encodes this pattern as its 6-bit id.
    pub fn id(self) -> u8 {
        match self {
            PatternKind::Horizontal { delta } => {
                assert!((1..=MAX_RUN_DELTA).contains(&delta));
                4 + (delta - 1)
            }
            PatternKind::Vertical { delta } => {
                assert!((1..=MAX_RUN_DELTA).contains(&delta));
                4 + 8 + (delta - 1)
            }
            PatternKind::Diagonal { delta } => {
                assert!((1..=MAX_RUN_DELTA).contains(&delta));
                4 + 16 + (delta - 1)
            }
            PatternKind::AntiDiagonal { delta } => {
                assert!((1..=MAX_RUN_DELTA).contains(&delta));
                4 + 24 + (delta - 1)
            }
            PatternKind::Block { rows, cols } => {
                assert!((MIN_BLOCK_DIM..=MAX_BLOCK_DIM).contains(&rows));
                assert!((MIN_BLOCK_DIM..=MAX_BLOCK_DIM).contains(&cols));
                36 + 3 * (rows - 2) + (cols - 2)
            }
        }
    }

    /// Decodes a 6-bit pattern id back into a kind; `None` for delta-unit
    /// ids (0..=2) and unassigned ids.
    #[inline(always)]
    pub fn from_id(id: u8) -> Option<PatternKind> {
        match id {
            4..=11 => Some(PatternKind::Horizontal { delta: id - 4 + 1 }),
            12..=19 => Some(PatternKind::Vertical { delta: id - 12 + 1 }),
            20..=27 => Some(PatternKind::Diagonal { delta: id - 20 + 1 }),
            28..=35 => Some(PatternKind::AntiDiagonal { delta: id - 28 + 1 }),
            36..=44 => {
                let k = id - 36;
                Some(PatternKind::Block {
                    rows: k / 3 + 2,
                    cols: k % 3 + 2,
                })
            }
            _ => None,
        }
    }

    /// The delta-unit pattern id for a given width.
    pub fn delta_id(width: DeltaWidth) -> u8 {
        match width {
            DeltaWidth::U8 => 0,
            DeltaWidth::U16 => 1,
            DeltaWidth::U32 => 2,
        }
    }

    /// Inverse of [`PatternKind::delta_id`].
    #[inline(always)]
    pub fn delta_width_from_id(id: u8) -> Option<DeltaWidth> {
        match id {
            0 => Some(DeltaWidth::U8),
            1 => Some(DeltaWidth::U16),
            2 => Some(DeltaWidth::U32),
            _ => None,
        }
    }

    /// Coordinates of the `k`-th element of an instance anchored at
    /// `(row, col)` (the anchor is the structurally first element:
    /// top-left for blocks, topmost for verticals/diagonals, top-right
    /// for anti-diagonals).
    #[inline(always)]
    pub fn element(&self, row: u32, col: u32, k: u32) -> (u32, u32) {
        match *self {
            PatternKind::Horizontal { delta } => (row, col + k * delta as u32),
            PatternKind::Vertical { delta } => (row + k * delta as u32, col),
            PatternKind::Diagonal { delta } => (row + k * delta as u32, col + k * delta as u32),
            PatternKind::AntiDiagonal { delta } => (row + k * delta as u32, col - k * delta as u32),
            PatternKind::Block { cols, .. } => (row + k / cols as u32, col + k % cols as u32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<PatternKind> {
        let mut v = Vec::new();
        for d in 1..=MAX_RUN_DELTA {
            v.push(PatternKind::Horizontal { delta: d });
            v.push(PatternKind::Vertical { delta: d });
            v.push(PatternKind::Diagonal { delta: d });
            v.push(PatternKind::AntiDiagonal { delta: d });
        }
        for r in MIN_BLOCK_DIM..=MAX_BLOCK_DIM {
            for c in MIN_BLOCK_DIM..=MAX_BLOCK_DIM {
                v.push(PatternKind::Block { rows: r, cols: c });
            }
        }
        v
    }

    #[test]
    fn id_round_trip_and_uniqueness() {
        let kinds = all_kinds();
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            let id = k.id();
            assert!(id < 64, "id must fit 6 bits, got {id} for {k:?}");
            assert!(id > 2, "substructure ids must not collide with delta ids");
            assert!(seen.insert(id), "duplicate id {id}");
            assert_eq!(PatternKind::from_id(id), Some(k));
        }
    }

    #[test]
    fn delta_ids() {
        for w in [DeltaWidth::U8, DeltaWidth::U16, DeltaWidth::U32] {
            let id = PatternKind::delta_id(w);
            assert_eq!(PatternKind::delta_width_from_id(id), Some(w));
            assert_eq!(PatternKind::from_id(id), None);
        }
    }

    #[test]
    fn width_selection() {
        assert_eq!(DeltaWidth::for_delta(0), DeltaWidth::U8);
        assert_eq!(DeltaWidth::for_delta(255), DeltaWidth::U8);
        assert_eq!(DeltaWidth::for_delta(256), DeltaWidth::U16);
        assert_eq!(DeltaWidth::for_delta(65_535), DeltaWidth::U16);
        assert_eq!(DeltaWidth::for_delta(65_536), DeltaWidth::U32);
    }

    #[test]
    fn element_coordinates() {
        let h = PatternKind::Horizontal { delta: 2 };
        assert_eq!(h.element(3, 5, 0), (3, 5));
        assert_eq!(h.element(3, 5, 2), (3, 9));

        let v = PatternKind::Vertical { delta: 1 };
        assert_eq!(v.element(3, 5, 2), (5, 5));

        let d = PatternKind::Diagonal { delta: 3 };
        assert_eq!(d.element(0, 1, 2), (6, 7));

        let a = PatternKind::AntiDiagonal { delta: 1 };
        assert_eq!(a.element(2, 10, 3), (5, 7));

        let b = PatternKind::Block { rows: 2, cols: 3 };
        assert_eq!(b.element(4, 8, 0), (4, 8));
        assert_eq!(b.element(4, 8, 2), (4, 10));
        assert_eq!(b.element(4, 8, 3), (5, 8));
        assert_eq!(b.element(4, 8, 5), (5, 10));
    }
}
