#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! CSX — Compressed Sparse eXtended (§IV-A of the paper; Kourtis et al.,
//! PPoPP'11).
//!
//! CSX discards CSR's `rowptr`/`colind` arrays and instead stores all
//! location metadata in a variable-length byte stream (`ctl`) of *units*.
//! A unit is either a detected non-zero *substructure* (horizontal,
//! vertical, diagonal, anti-diagonal run or a small dense block) whose body
//! is empty, or a *delta unit* carrying column deltas of a fixed byte
//! width. Values are stored in a separate array in unit order.
//!
//! This crate implements:
//!
//! * [`varint`] — the variable-size integers used in unit heads;
//! * [`pattern`] — the 6-bit pattern-id space;
//! * [`detect`] — substructure detection via coordinate transforms, with
//!   the sampling-based type-selection pass the paper's §V-E relies on;
//! * [`encode`] — the `ctl` byte-stream builder and decoder;
//! * [`matrix`] — [`matrix::CsxMatrix`], construction from COO/CSR and the
//!   SpMV kernel.
//!
//! The original CSX JIT-compiles its kernels with LLVM; this implementation
//! uses a monomorphized interpreter instead (DESIGN.md substitution S2).

pub mod detect;
pub mod encode;
pub mod matrix;
pub mod pattern;
pub mod varint;

pub use detect::{DetectConfig, Detected};
pub use matrix::{CsxMatrix, CsxStats};
pub use pattern::PatternKind;
