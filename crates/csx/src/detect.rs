//! Substructure detection (§IV-A, Fig. 6).
//!
//! CSX detects instances of several substructure families by transforming
//! coordinates so that each family becomes a "horizontal run with constant
//! delta" in the transformed space, extracting maximal runs, and then
//! greedily resolving conflicts between families by encoding gain. A
//! sampling-based statistics pass first decides which families are worth
//! enabling for a given matrix — this is what keeps the preprocessing cost
//! of §V-E contained.

use crate::pattern::{PatternKind, MAX_RUN_DELTA};
use std::collections::HashMap;
use symspmv_sparse::{CooMatrix, Idx, Val};

/// CSR-style index over a canonical COO matrix: O(log row_nnz) membership
/// and value lookup without hashing. This is what keeps the preprocessing
/// cost of §V-E in the tens-of-SpMVs range.
pub struct CooIndex<'a> {
    coo: &'a CooMatrix,
    rowptr: Vec<usize>,
}

impl<'a> CooIndex<'a> {
    /// Builds the index (the COO must be canonical).
    pub fn new(coo: &'a CooMatrix) -> Self {
        debug_assert!(coo.is_canonical());
        let mut rowptr = vec![0usize; coo.nrows() as usize + 1];
        for &r in coo.row_indices() {
            rowptr[r as usize + 1] += 1;
        }
        for i in 0..coo.nrows() as usize {
            rowptr[i + 1] += rowptr[i];
        }
        CooIndex { coo, rowptr }
    }

    /// Triplet index of entry `(r, c)`, if present.
    #[inline]
    pub fn entry(&self, r: Idx, c: Idx) -> Option<usize> {
        if r >= self.coo.nrows() {
            return None;
        }
        let lo = self.rowptr[r as usize];
        let hi = self.rowptr[r as usize + 1];
        self.coo.col_indices()[lo..hi]
            .binary_search(&c)
            .ok()
            .map(|k| lo + k)
    }

    /// True if entry `(r, c)` is structurally present.
    #[inline]
    pub fn contains(&self, r: Idx, c: Idx) -> bool {
        self.entry(r, c).is_some()
    }

    /// Value of entry `(r, c)`; panics if absent (encoder bug).
    #[inline]
    pub fn value_at(&self, r: Idx, c: Idx) -> Val {
        let k = self
            .entry(r, c)
            .unwrap_or_else(|| unreachable!("entry ({r}, {c}) absent from the detector's COO"));
        self.coo.values()[k]
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.coo.nnz()
    }
}

/// A substructure family that can be enabled for detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Horizontal runs (any delta up to the configured max).
    Horizontal,
    /// Vertical runs.
    Vertical,
    /// Diagonal runs.
    Diagonal,
    /// Anti-diagonal runs.
    AntiDiagonal,
    /// Dense blocks of the given dimensions.
    Block(u8, u8),
}

/// Detection configuration.
#[derive(Debug, Clone)]
pub struct DetectConfig {
    /// Minimum run length for 1-D substructures (default 4).
    pub min_run_len: usize,
    /// Maximum delta distance for 1-D runs (default [`MAX_RUN_DELTA`]).
    pub max_delta: u8,
    /// Families considered by the statistics pass.
    pub candidate_families: Vec<Family>,
    /// Fraction of rows sampled by the statistics pass (1.0 = full scan).
    /// The default of 0.05 mirrors the paper's "advanced matrix sampling
    /// techniques" that keep the §V-E preprocessing cost contained; small
    /// matrices (< 64 rows) are always fully scanned because sampling works
    /// on 64-row windows.
    pub sample_fraction: f64,
    /// Minimum fraction of (sampled) non-zeros a family must cover to be
    /// enabled for the final encoding pass.
    pub min_coverage: f64,
    /// CSX-Sym boundary (§IV-B): instances whose *column* coordinates fall
    /// on both sides of this split are rejected, because their transposed
    /// writes would target both the local and the output vector.
    pub col_split: Option<Idx>,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            min_run_len: 4,
            max_delta: MAX_RUN_DELTA,
            candidate_families: vec![
                Family::Horizontal,
                Family::Vertical,
                Family::Diagonal,
                Family::AntiDiagonal,
                Family::Block(2, 2),
                Family::Block(3, 3),
                Family::Block(2, 3),
                Family::Block(3, 2),
                Family::Block(4, 4),
            ],
            sample_fraction: 0.05,
            min_coverage: 0.05,
            col_split: None,
        }
    }
}

/// One detected substructure instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instance {
    /// The pattern (family + delta / block dims).
    pub kind: PatternKind,
    /// Anchor row (structurally first element).
    pub row: Idx,
    /// Anchor column.
    pub col: Idx,
    /// Number of elements (≥ 2; ≤ 255 so it fits the unit size byte).
    pub len: u32,
}

impl Instance {
    /// Iterates the element coordinates of this instance.
    pub fn elements(&self) -> impl Iterator<Item = (Idx, Idx)> + '_ {
        (0..self.len).map(move |k| self.kind.element(self.row, self.col, k))
    }
}

/// The result of detection: accepted instances plus leftover elements.
#[derive(Debug, Clone)]
pub struct Detected {
    /// Accepted instances, sorted by anchor `(row, col)`.
    pub instances: Vec<Instance>,
    /// Elements not covered by any instance, sorted row-major.
    pub leftover: Vec<(Idx, Idx)>,
    /// Families that survived the statistics pass.
    pub enabled: Vec<Family>,
    /// Total non-zeros examined.
    pub nnz: usize,
}

impl Detected {
    /// Fraction of non-zeros covered by substructure instances.
    pub fn coverage(&self) -> f64 {
        if self.nnz == 0 {
            return 0.0;
        }
        let covered: usize = self.instances.iter().map(|i| i.len as usize).sum();
        covered as f64 / self.nnz as f64
    }

    /// Counts instances per family (for the compression reports).
    pub fn family_histogram(&self) -> HashMap<Family, usize> {
        let mut h = HashMap::new();
        for inst in &self.instances {
            *h.entry(family_of(inst.kind)).or_insert(0) += 1;
        }
        h
    }
}

fn family_of(kind: PatternKind) -> Family {
    match kind {
        PatternKind::Horizontal { .. } => Family::Horizontal,
        PatternKind::Vertical { .. } => Family::Vertical,
        PatternKind::Diagonal { .. } => Family::Diagonal,
        PatternKind::AntiDiagonal { .. } => Family::AntiDiagonal,
        PatternKind::Block { rows, cols } => Family::Block(rows, cols),
    }
}

/// Runs the full detection pipeline: statistics pass (family selection on a
/// row sample) followed by the encoding pass with the enabled families.
pub fn analyze(coo: &CooMatrix, config: &DetectConfig) -> Detected {
    debug_assert!(coo.is_canonical(), "detection expects canonical COO");
    let enabled = select_families(coo, config);
    detect_with(coo, config, &enabled)
}

/// Statistics pass: estimates each candidate family's coverage on a sampled
/// row window and returns the families above the coverage threshold.
pub fn select_families(coo: &CooMatrix, config: &DetectConfig) -> Vec<Family> {
    let sample = sample_matrix(coo, config.sample_fraction);
    let nnz = sample.nnz().max(1);
    let membership = CooIndex::new(&sample);

    let mut out = Vec::new();
    let mut best_block: Option<(Family, usize)> = None;
    for &fam in &config.candidate_families {
        let cands = candidates_for(&sample, &membership, fam, config);
        let covered: usize = cands.iter().map(|i| i.len as usize).sum();
        if covered as f64 / nnz as f64 >= config.min_coverage {
            if let Family::Block(..) = fam {
                // Keep only the dominant block shape: overlapping block
                // dims mostly compete for the same elements, and scanning
                // each costs a full membership pass (§V-E budget).
                if best_block.map(|(_, c)| covered > c).unwrap_or(true) {
                    best_block = Some((fam, covered));
                }
            } else {
                out.push(fam);
            }
        }
    }
    if let Some((fam, _)) = best_block {
        out.push(fam);
    }
    out
}

/// Encoding pass with a fixed set of enabled families.
pub fn detect_with(coo: &CooMatrix, config: &DetectConfig, enabled: &[Family]) -> Detected {
    let membership = CooIndex::new(coo);

    // Gather all candidates from the enabled families.
    let mut candidates: Vec<Instance> = Vec::new();
    for &fam in enabled {
        candidates.extend(candidates_for(coo, &membership, fam, config));
    }

    // Greedy conflict resolution by gain: longer instances first (they save
    // the most ctl/colind bytes), blocks break ties ahead of runs because
    // their head is equally small but they also improve value locality.
    candidates.sort_unstable_by_key(|i| {
        (
            std::cmp::Reverse(i.len),
            match i.kind {
                PatternKind::Block { .. } => 0u8,
                _ => 1,
            },
            i.row,
            i.col,
        )
    });

    // Per-entry coverage bitmap indexed by triplet position.
    let mut covered = vec![false; coo.nnz()];
    let mut accepted: Vec<Instance> = Vec::new();
    let mut scratch: Vec<usize> = Vec::new();
    'cand: for inst in candidates {
        scratch.clear();
        for (r, c) in inst.elements() {
            match membership.entry(r, c) {
                Some(e) if !covered[e] => scratch.push(e),
                _ => continue 'cand,
            }
        }
        for &e in &scratch {
            covered[e] = true;
        }
        accepted.push(inst);
    }
    accepted.sort_unstable_by_key(|i| (i.row, i.col));

    let leftover: Vec<(Idx, Idx)> = coo
        .iter()
        .enumerate()
        .filter(|&(e, _)| !covered[e])
        .map(|(_, (r, c, _))| (r, c))
        .collect();

    Detected {
        instances: accepted,
        leftover,
        enabled: enabled.to_vec(),
        nnz: coo.nnz(),
    }
}

/// Extracts a row-window sample of the matrix for the statistics pass.
fn sample_matrix(coo: &CooMatrix, fraction: f64) -> CooMatrix {
    if fraction >= 1.0 {
        return coo.clone();
    }
    assert!(fraction > 0.0, "sample fraction must be positive");
    // Deterministic striding: keep windows of 64 consecutive rows, spaced so
    // that roughly `fraction` of all rows are included. Windows (not single
    // rows) are required so vertical/diagonal runs remain detectable.
    let window = 64u64;
    let period = (window as f64 / fraction).ceil() as u64;
    let mut out = CooMatrix::with_capacity(
        coo.nrows(),
        coo.ncols(),
        (coo.nnz() as f64 * fraction) as usize + 16,
    );
    for (r, c, v) in coo.iter() {
        if u64::from(r) % period < window {
            out.push(r, c, v);
        }
    }
    out
}

/// True if the instance violates the CSX-Sym boundary rule.
fn straddles_split(inst: &Instance, split: Idx) -> bool {
    let mut any_lo = false;
    let mut any_hi = false;
    for (_, c) in inst.elements() {
        if c < split {
            any_lo = true;
        } else {
            any_hi = true;
        }
    }
    any_lo && any_hi
}

/// Generates (possibly overlapping) candidate instances for one family.
fn candidates_for(
    coo: &CooMatrix,
    membership: &CooIndex<'_>,
    fam: Family,
    config: &DetectConfig,
) -> Vec<Instance> {
    let mut out = match fam {
        Family::Horizontal => runs_1d(coo, config, fam),
        Family::Vertical => runs_1d(coo, config, fam),
        Family::Diagonal => runs_1d(coo, config, fam),
        Family::AntiDiagonal => runs_1d(coo, config, fam),
        Family::Block(br, bc) => blocks(coo, membership, br, bc),
    };
    if let Some(split) = config.col_split {
        out.retain(|i| !straddles_split(i, split));
    }
    out
}

/// Extracts maximal constant-delta runs for a 1-D family by transforming
/// coordinates to `(group, pos)` space.
fn runs_1d(coo: &CooMatrix, config: &DetectConfig, fam: Family) -> Vec<Instance> {
    // Transform every element into (group, pos). Within a group, elements
    // sorted by pos form the candidate sequence.
    let mut pts: Vec<(i64, i64, Idx, Idx)> = coo
        .iter()
        .map(|(r, c, _)| {
            let (g, p) = match fam {
                Family::Horizontal => (i64::from(r), i64::from(c)),
                Family::Vertical => (i64::from(c), i64::from(r)),
                Family::Diagonal => (i64::from(c) - i64::from(r), i64::from(r)),
                Family::AntiDiagonal => (i64::from(r) + i64::from(c), i64::from(r)),
                Family::Block(..) => unreachable!("blocks handled separately"),
            };
            (g, p, r, c)
        })
        .collect();
    // Canonical COO is already (r, c)-sorted, which is exactly the
    // horizontal transform's order — skip the sort for that family.
    if fam != Family::Horizontal {
        pts.sort_unstable();
    }

    let make_kind = |delta: u8| match fam {
        Family::Horizontal => PatternKind::Horizontal { delta },
        Family::Vertical => PatternKind::Vertical { delta },
        Family::Diagonal => PatternKind::Diagonal { delta },
        Family::AntiDiagonal => PatternKind::AntiDiagonal { delta },
        Family::Block(..) => unreachable!(),
    };

    let mut out = Vec::new();
    let mut i = 0usize;
    while i < pts.len() {
        // Find this group's extent.
        let g = pts[i].0;
        let mut j = i;
        while j < pts.len() && pts[j].0 == g {
            j += 1;
        }
        let group = &pts[i..j];
        // Greedy maximal-run scan inside the group.
        let mut s = 0usize;
        while s + 1 < group.len() {
            let d = group[s + 1].1 - group[s].1;
            if d < 1 || d > i64::from(config.max_delta) {
                s += 1;
                continue;
            }
            let mut e = s + 1;
            while e + 1 < group.len() && group[e + 1].1 - group[e].1 == d {
                e += 1;
            }
            let total = e - s + 1;
            if total >= config.min_run_len {
                // Chunk to the 255-element unit size limit.
                let mut off = 0usize;
                while total - off >= config.min_run_len.min(2) && off < total {
                    let chunk = (total - off).min(255);
                    if chunk < 2 {
                        break;
                    }
                    let anchor = group[s + off];
                    out.push(Instance {
                        kind: make_kind(d as u8),
                        row: anchor.2,
                        col: anchor.3,
                        len: chunk as u32,
                    });
                    off += chunk;
                }
            }
            s = e + 1;
        }
        i = j;
    }
    out
}

/// Generates full dense-block candidates anchored at every possible
/// top-left element.
fn blocks(coo: &CooMatrix, membership: &CooIndex<'_>, br: u8, bc: u8) -> Vec<Instance> {
    let mut out = Vec::new();
    let kind = PatternKind::Block { rows: br, cols: bc };
    let len = u32::from(br) * u32::from(bc);
    for (r, c, _) in coo.iter() {
        // Quick pruning: only anchor where the element above / left is
        // absent, so aligned tilings are preferred over every offset.
        if r > 0 && membership.contains(r - 1, c) && c > 0 && membership.contains(r, c - 1) {
            continue;
        }
        if r + u32::from(br) > coo.nrows() || c + u32::from(bc) > coo.ncols() {
            continue;
        }
        let full = (0..len).all(|k| {
            let (er, ec) = kind.element(r, c, k);
            membership.contains(er, ec)
        });
        if full {
            out.push(Instance {
                kind,
                row: r,
                col: c,
                len,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn coo_from(entries: &[(Idx, Idx)]) -> CooMatrix {
        let n = entries
            .iter()
            .map(|&(r, c)| r.max(c) + 1)
            .max()
            .unwrap_or(1);
        let mut m = CooMatrix::new(n, n);
        for &(r, c) in entries {
            m.push(r, c, 1.0);
        }
        m.canonicalize();
        m
    }

    fn cfg() -> DetectConfig {
        DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        }
    }

    #[test]
    fn horizontal_run_detected() {
        let m = coo_from(&[(0, 2), (0, 3), (0, 4), (0, 5), (0, 6)]);
        let d = analyze(&m, &cfg());
        assert_eq!(d.instances.len(), 1);
        let i = d.instances[0];
        assert_eq!(i.kind, PatternKind::Horizontal { delta: 1 });
        assert_eq!((i.row, i.col, i.len), (0, 2, 5));
        assert!(d.leftover.is_empty());
        assert!((d.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn horizontal_with_stride() {
        let m = coo_from(&[(1, 0), (1, 3), (1, 6), (1, 9)]);
        let d = analyze(&m, &cfg());
        assert_eq!(d.instances.len(), 1);
        assert_eq!(d.instances[0].kind, PatternKind::Horizontal { delta: 3 });
    }

    #[test]
    fn vertical_run_detected() {
        let m = coo_from(&[(2, 1), (3, 1), (4, 1), (5, 1)]);
        let d = analyze(&m, &cfg());
        assert_eq!(d.instances.len(), 1);
        assert_eq!(d.instances[0].kind, PatternKind::Vertical { delta: 1 });
        assert_eq!(d.instances[0].row, 2);
    }

    #[test]
    fn diagonal_and_antidiagonal() {
        let diag = coo_from(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let d = analyze(&diag, &cfg());
        assert_eq!(d.instances[0].kind, PatternKind::Diagonal { delta: 1 });

        let anti = coo_from(&[(0, 5), (1, 4), (2, 3), (3, 2)]);
        let d = analyze(&anti, &cfg());
        assert_eq!(d.instances[0].kind, PatternKind::AntiDiagonal { delta: 1 });
        // Anchor is the top-right element.
        assert_eq!((d.instances[0].row, d.instances[0].col), (0, 5));
    }

    #[test]
    fn block_detected_and_preferred() {
        // A full 2x2 block: the block candidate must win over two length-2
        // horizontal runs (which are below min_run_len anyway).
        let m = coo_from(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let d = analyze(&m, &cfg());
        assert_eq!(d.instances.len(), 1);
        assert_eq!(d.instances[0].kind, PatternKind::Block { rows: 2, cols: 2 });
        assert!(d.leftover.is_empty());
    }

    #[test]
    fn short_runs_left_over() {
        let m = coo_from(&[(0, 0), (0, 1), (0, 5)]);
        let d = analyze(&m, &cfg());
        assert!(d.instances.is_empty());
        assert_eq!(d.leftover.len(), 3);
        assert_eq!(d.coverage(), 0.0);
    }

    #[test]
    fn no_overlapping_coverage() {
        // A 4x4 dense block: many candidates overlap; accepted instances
        // must partition the covered elements.
        let mut entries = Vec::new();
        for r in 0..4 {
            for c in 0..4 {
                entries.push((r, c));
            }
        }
        let m = coo_from(&entries);
        let d = analyze(&m, &cfg());
        let mut seen = HashSet::new();
        for inst in &d.instances {
            for (r, c) in inst.elements() {
                assert!(seen.insert((r, c)), "element ({r},{c}) covered twice");
            }
        }
        for &(r, c) in &d.leftover {
            assert!(seen.insert((r, c)), "leftover ({r},{c}) also covered");
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn col_split_rejects_straddlers() {
        let m = coo_from(&[(5, 3), (5, 4), (5, 5), (5, 6)]);
        let mut c = cfg();
        c.col_split = Some(5);
        let d = analyze(&m, &c);
        assert!(
            d.instances.is_empty(),
            "run crossing the split must be rejected: {:?}",
            d.instances
        );
        assert_eq!(d.leftover.len(), 4);

        // Entirely on one side: accepted.
        c.col_split = Some(10);
        let d = analyze(&m, &c);
        assert_eq!(d.instances.len(), 1);
    }

    #[test]
    fn family_selection_threshold() {
        // Dominated by one long horizontal run; vertical coverage is zero.
        let mut entries: Vec<(Idx, Idx)> = (0..50).map(|c| (0, c)).collect();
        entries.push((3, 7));
        let m = coo_from(&entries);
        let mut c = cfg();
        c.min_coverage = 0.5;
        let enabled = select_families(&m, &c);
        assert!(enabled.contains(&Family::Horizontal));
        assert!(!enabled.contains(&Family::Vertical));
    }

    #[test]
    fn long_runs_chunked_to_255() {
        let entries: Vec<(Idx, Idx)> = (0..600).map(|c| (0, c)).collect();
        let m = coo_from(&entries);
        let d = analyze(&m, &cfg());
        assert!(d.instances.iter().all(|i| i.len <= 255));
        let covered: u32 = d.instances.iter().map(|i| i.len).sum();
        assert_eq!(covered as usize + d.leftover.len(), 600);
        assert!(covered >= 510, "chunking should keep most elements covered");
    }

    #[test]
    fn sampling_is_deterministic_and_partial() {
        let entries: Vec<(Idx, Idx)> = (0..4096).map(|i| (i, i / 2)).collect();
        let m = coo_from(&entries);
        let s1 = sample_matrix(&m, 0.1);
        let s2 = sample_matrix(&m, 0.1);
        assert_eq!(s1, s2);
        assert!(s1.nnz() < m.nnz());
        assert!(s1.nnz() > 0);
    }
}
