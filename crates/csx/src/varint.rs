//! LEB128-style unsigned variable-size integers.
//!
//! CSX unit heads store the first-element column as a delta distance "in a
//! variable size integer" (§IV-A). We use the standard little-endian base-128
//! encoding: seven payload bits per byte, high bit set on continuation.

/// Appends the varint encoding of `v` to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a varint from `buf` starting at `*pos`, advancing `*pos`.
///
/// Panics on truncated input or on values exceeding 64 bits — both indicate
/// a corrupted `ctl` stream, which is a program bug, not user input.
#[inline(always)]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    // Fast path: single-byte varints dominate real ctl streams.
    let first = buf[*pos];
    *pos += 1;
    if first & 0x80 == 0 {
        return u64::from(first);
    }
    let mut result = u64::from(first & 0x7F);
    let mut shift = 7u32;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        result |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return result;
        }
        shift += 7;
        assert!(shift < 64, "varint too long");
    }
}

/// Number of bytes the varint encoding of `v` occupies.
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "length model for {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn sequences_decode_in_order() {
        let vals = [5u64, 300, 0, 1 << 40];
        let mut buf = Vec::new();
        for &v in &vals {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn single_byte_values() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf, vec![v as u8]);
        }
    }

    #[test]
    #[should_panic]
    fn truncated_input_panics() {
        let buf = vec![0x80u8];
        let mut pos = 0;
        let _ = read_varint(&buf, &mut pos);
    }
}
