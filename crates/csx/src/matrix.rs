//! The CSX matrix type and its SpMV kernel.

use crate::detect::{analyze, CooIndex, DetectConfig};
use crate::encode::{CtlStream, ID_MASK, NR_BIT, RJMP_BIT};
use crate::pattern::{DeltaWidth, PatternKind};
use crate::varint::read_varint;
use symspmv_sparse::validate::{validate_coo, CooChecks};
use symspmv_sparse::{CooMatrix, CsrMatrix, Idx, SparseError, Val};

/// Compression statistics of a CSX encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct CsxStats {
    /// Bytes of the CSX representation (ctl + values).
    pub size_bytes: usize,
    /// Bytes of the equivalent CSR representation (Eq. 1).
    pub csr_bytes: usize,
    /// Fraction of non-zeros covered by substructure units.
    pub coverage: f64,
    /// Number of substructure units.
    pub substructure_units: usize,
    /// Number of delta units.
    pub delta_units: usize,
}

impl CsxStats {
    /// Compression ratio versus CSR: `1 − size/size_CSR` (the paper's
    /// Table I "C.R." columns, expressed as a fraction).
    pub fn compression_ratio(&self) -> f64 {
        1.0 - self.size_bytes as f64 / self.csr_bytes as f64
    }
}

/// A sparse matrix in CSX format (unsymmetric variant).
///
/// ```
/// use symspmv_csx::{CsxMatrix, detect::DetectConfig};
/// use symspmv_sparse::CooMatrix;
/// let mut a = CooMatrix::new(4, 8);
/// for c in 0..6 {
///     a.push(1, c, 1.0); // a horizontal run CSX will encode as one unit
/// }
/// a.canonicalize();
/// let cfg = DetectConfig { min_coverage: 0.0, ..DetectConfig::default() };
/// let m = CsxMatrix::from_coo(&a, &cfg);
/// assert_eq!(m.stats().substructure_units, 1);
/// let mut y = vec![0.0; 4];
/// m.spmv(&vec![1.0; 8], &mut y);
/// assert_eq!(y[1], 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsxMatrix {
    nrows: Idx,
    ncols: Idx,
    stream: CtlStream,
    stats: CsxStats,
}

impl CsxMatrix {
    /// Encodes a matrix with the given detection configuration.
    pub fn from_coo(coo: &CooMatrix, config: &DetectConfig) -> Self {
        let mut c = coo.clone();
        c.canonicalize();
        Self::from_canonical_coo(&c, config)
    }

    /// Encodes an already-canonical COO matrix.
    pub fn from_canonical_coo(coo: &CooMatrix, config: &DetectConfig) -> Self {
        let det = analyze(coo, config);
        let vm = CooIndex::new(coo);
        let stream = CtlStream::encode(&det, &vm);
        let mut sub_units = 0usize;
        let mut delta_units = 0usize;
        stream.walk(
            |u| {
                if u.kind.is_some() {
                    sub_units += 1;
                } else {
                    delta_units += 1;
                }
            },
            |_, _, _| {},
        );
        let stats = CsxStats {
            size_bytes: stream.size_bytes(),
            csr_bytes: 12 * coo.nnz() + 4 * (coo.nrows() as usize + 1),
            coverage: det.coverage(),
            substructure_units: sub_units,
            delta_units,
        };
        CsxMatrix {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            stream,
            stats,
        }
    }

    /// Encodes from CSR (converts through COO).
    pub fn from_csr(csr: &CsrMatrix, config: &DetectConfig) -> Self {
        Self::from_canonical_coo(&csr.to_coo(), config)
    }

    /// Fully validated constructor for matrices from outside the process:
    /// rejects out-of-range indices, non-finite values and duplicate
    /// coordinates with a structured [`SparseError`] before encoding.
    pub fn try_from_coo(coo: &CooMatrix, config: &DetectConfig) -> Result<Self, SparseError> {
        let mut c = coo.clone();
        c.canonicalize();
        validate_coo(&c, &CooChecks::unsymmetric_format())?;
        Ok(Self::from_canonical_coo(&c, config))
    }

    /// Number of rows.
    pub fn nrows(&self) -> Idx {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Idx {
        self.ncols
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.stream.values.len()
    }

    /// Compression statistics.
    pub fn stats(&self) -> &CsxStats {
        &self.stats
    }

    /// The underlying ctl/values stream.
    pub fn stream(&self) -> &CtlStream {
        &self.stream
    }

    /// Serial SpMV: `y += A·x` — note the accumulate semantics; callers
    /// zero `y` first. Accumulation (instead of assignment) is what lets
    /// row-partitioned chunks and vertical units compose.
    pub fn spmv_accumulate(&self, x: &[Val], y: &mut [Val]) {
        spmv_stream(&self.stream, x, y);
    }

    /// Serial SpMV: `y = A·x`.
    pub fn spmv(&self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.ncols as usize);
        assert_eq!(y.len(), self.nrows as usize);
        y.fill(0.0);
        self.spmv_accumulate(x, y);
    }

    /// Reconstructs the COO form (testing / verification).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (r, c, v) in self.stream.decode_elements() {
            coo.push(r, c, v);
        }
        coo.canonicalize();
        coo
    }
}

/// The interpreter SpMV kernel over a raw ctl stream (`y += A·x`).
///
/// Each pattern id dispatches to a specialized inner loop — the
/// interpreter stand-in for CSX's LLVM-generated kernels (substitution S2).
pub fn spmv_stream(stream: &CtlStream, x: &[Val], y: &mut [Val]) {
    let ctl = &stream.ctl;
    let values = &stream.values;
    let mut pos = 0usize;
    let mut vi = 0usize;
    let mut row: i64 = -1;
    let mut col: Idx = 0;
    while pos < ctl.len() {
        let flags = ctl[pos];
        pos += 1;
        if flags & NR_BIT != 0 {
            let extra = if flags & RJMP_BIT != 0 {
                read_varint(ctl, &mut pos)
            } else {
                0
            };
            row += 1 + extra as i64;
            col = 0;
        }
        let size = usize::from(ctl[pos]);
        pos += 1;
        let ucol = read_varint(ctl, &mut pos) as Idx;
        let anchor = if flags & NR_BIT != 0 {
            ucol
        } else {
            col + ucol
        };
        col = anchor;
        let r = row as usize;
        let id = flags & ID_MASK;

        let unit_vals = &values[vi..vi + size];
        match PatternKind::from_id(id) {
            Some(PatternKind::Horizontal { delta }) => {
                let mut acc = 0.0;
                let mut c = anchor as usize;
                for &v in unit_vals {
                    acc += v * x[c];
                    c += delta as usize;
                }
                y[r] += acc;
                vi += size;
            }
            Some(PatternKind::Vertical { delta }) => {
                let xc = x[anchor as usize];
                let mut rr = r;
                for &v in unit_vals {
                    y[rr] += v * xc;
                    rr += delta as usize;
                }
                vi += size;
            }
            Some(PatternKind::Diagonal { delta }) => {
                let mut rr = r;
                let mut c = anchor as usize;
                for &v in unit_vals {
                    y[rr] += v * x[c];
                    rr += delta as usize;
                    c += delta as usize;
                }
                vi += size;
            }
            Some(PatternKind::AntiDiagonal { delta }) => {
                let mut rr = r;
                let mut c = anchor as usize;
                for &v in unit_vals {
                    y[rr] += v * x[c];
                    rr += delta as usize;
                    c = c.wrapping_sub(delta as usize);
                }
                vi += size;
            }
            Some(PatternKind::Block { rows: 3, cols: 3 }) => {
                // Dominant case on 3-dof structural matrices — unrolled.
                let base = anchor as usize;
                let (x0, x1, x2) = (x[base], x[base + 1], x[base + 2]);
                for (br, v) in unit_vals.chunks_exact(3).enumerate() {
                    y[r + br] += v[0] * x0 + v[1] * x1 + v[2] * x2;
                }
                vi += size;
            }
            Some(PatternKind::Block { rows: _, cols }) => {
                let bc = cols as usize;
                let base = anchor as usize;
                for (br, row_vals) in unit_vals.chunks_exact(bc).enumerate() {
                    let rr = r + br;
                    let mut acc = 0.0;
                    for (j, &v) in row_vals.iter().enumerate() {
                        acc += v * x[base + j];
                    }
                    y[rr] += acc;
                }
                vi += size;
            }
            None => {
                // Delta unit: slice-based inner loops so the compiler can
                // hoist the bounds checks out of the body.
                let width = PatternKind::delta_width_from_id(id)
                    .unwrap_or_else(|| unreachable!("invalid pattern id in ctl stream"));
                let mut acc = values[vi] * x[anchor as usize];
                let mut c = anchor as usize;
                let rest = &values[vi + 1..vi + size];
                match width {
                    DeltaWidth::U8 => {
                        let body = &ctl[pos..pos + size - 1];
                        pos += size - 1;
                        for (&d, &v) in body.iter().zip(rest) {
                            c += usize::from(d);
                            acc += v * x[c];
                        }
                    }
                    DeltaWidth::U16 => {
                        let body = &ctl[pos..pos + 2 * (size - 1)];
                        pos += 2 * (size - 1);
                        for (d, &v) in body.chunks_exact(2).zip(rest) {
                            c += usize::from(u16::from_le_bytes([d[0], d[1]]));
                            acc += v * x[c];
                        }
                    }
                    DeltaWidth::U32 => {
                        let body = &ctl[pos..pos + 4 * (size - 1)];
                        pos += 4 * (size - 1);
                        for (d, &v) in body.chunks_exact(4).zip(rest) {
                            c += u32::from_le_bytes([d[0], d[1], d[2], d[3]]) as usize;
                            acc += v * x[c];
                        }
                    }
                }
                vi += size;
                y[r] += acc;
            }
        }
    }
}

/// Extracts the sub-matrix of rows `[start, end)` as canonical COO —
/// used to encode per-thread CSX chunks (coordinates stay absolute).
pub fn rows_submatrix(coo: &CooMatrix, start: Idx, end: Idx) -> CooMatrix {
    let mut out = CooMatrix::with_capacity(coo.nrows(), coo.ncols(), coo.nnz());
    for (r, c, v) in coo.iter() {
        if r >= start && r < end {
            out.push(r, c, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectConfig {
        DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        }
    }

    #[test]
    fn spmv_matches_reference_on_patterns() {
        let mut coo = CooMatrix::new(20, 20);
        // Horizontal, vertical, diagonal, block and scattered content.
        for c in 0..6 {
            coo.push(0, c, (c + 1) as Val);
        }
        for r in 3..9 {
            coo.push(r, 10, r as Val);
        }
        for k in 0..5 {
            coo.push(10 + k, 2 + k, 1.5);
        }
        for r in 0..3 {
            for c in 0..3 {
                coo.push(14 + r, 14 + c, (r + c) as Val + 0.5);
            }
        }
        coo.push(19, 0, -3.0);
        coo.canonicalize();

        let m = CsxMatrix::from_coo(&coo, &cfg());
        assert_eq!(m.nnz(), coo.nnz());
        let x = symspmv_sparse::dense::seeded_vector(20, 1);
        let mut y = vec![0.0; 20];
        let mut y_ref = vec![0.0; 20];
        m.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        symspmv_sparse::dense::assert_vec_close(&y, &y_ref, 1e-12);
    }

    #[test]
    fn spmv_matches_on_generated_matrices() {
        for seed in 0..3u64 {
            let coo = symspmv_sparse::gen::banded_random(257, 17, 9.0, seed);
            let m = CsxMatrix::from_coo(&coo, &cfg());
            let x = symspmv_sparse::dense::seeded_vector(257, seed);
            let mut y = vec![0.0; 257];
            let mut y_ref = vec![0.0; 257];
            m.spmv(&x, &mut y);
            coo.spmv_reference(&x, &mut y_ref);
            symspmv_sparse::dense::assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn to_coo_round_trip() {
        let coo = symspmv_sparse::gen::block_structural(20, 3, 4.0, 6, 3);
        let m = CsxMatrix::from_coo(&coo, &cfg());
        let mut orig = coo.clone();
        orig.canonicalize();
        assert_eq!(m.to_coo(), orig);
    }

    #[test]
    fn stats_are_consistent() {
        let coo = symspmv_sparse::gen::block_structural(40, 3, 6.0, 10, 4);
        let m = CsxMatrix::from_coo(&coo, &cfg());
        let st = m.stats();
        assert!(st.size_bytes > 0);
        assert!(
            st.coverage > 0.3,
            "block matrix should be well covered: {}",
            st.coverage
        );
        assert!(st.compression_ratio() > 0.0, "CSX should beat CSR here");
        assert!(st.substructure_units > 0);
    }

    #[test]
    fn chunked_rows_compose() {
        let coo = symspmv_sparse::gen::banded_random(120, 9, 6.0, 9);
        let mut c = coo.clone();
        c.canonicalize();
        let a = CsxMatrix::from_canonical_coo(&rows_submatrix(&c, 0, 60), &cfg());
        let b = CsxMatrix::from_canonical_coo(&rows_submatrix(&c, 60, 120), &cfg());
        let x = symspmv_sparse::dense::seeded_vector(120, 2);
        let mut y = vec![0.0; 120];
        a.spmv_accumulate(&x, &mut y);
        b.spmv_accumulate(&x, &mut y);
        let mut y_ref = vec![0.0; 120];
        c.spmv_reference(&x, &mut y_ref);
        symspmv_sparse::dense::assert_vec_close(&y, &y_ref, 1e-12);
    }

    #[test]
    fn empty_and_tiny_matrices() {
        let empty = CooMatrix::new(3, 3);
        let m = CsxMatrix::from_coo(&empty, &cfg());
        let x = vec![1.0; 3];
        let mut y = vec![9.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, vec![0.0; 3]);

        let mut one = CooMatrix::new(1, 1);
        one.push(0, 0, 2.5);
        let m = CsxMatrix::from_coo(&one, &cfg());
        let mut y = vec![0.0; 1];
        m.spmv(&[2.0], &mut y);
        assert_eq!(y, vec![5.0]);
    }
}
