//! The `ctl` byte-stream encoder/decoder (§IV-A, Fig. 7).
//!
//! Stream grammar, per unit:
//!
//! ```text
//! flags: u8          bit 7 = NR (new row), bit 6 = RJMP, bits 0..=5 = id
//! [rjmp: varint]     present iff RJMP: extra empty rows jumped beyond 1
//! size:  u8          number of elements in the unit (1..=255)
//! ucol:  varint      anchor column; absolute after NR, else delta from the
//!                    previous unit's anchor column in the same row
//! [body]             delta units only: (size − 1) column deltas of the
//!                    unit's fixed byte width
//! ```
//!
//! The decoder starts *before* row 0, so the first unit always carries NR.
//! Values are stored separately, in unit-element order.

use crate::detect::{CooIndex, Detected};
use crate::pattern::{DeltaWidth, PatternKind};
use crate::varint::{read_varint, write_varint};
use symspmv_sparse::{CooMatrix, Idx, Val};

/// Flags-byte bit for "unit starts a new row".
pub const NR_BIT: u8 = 0x80;
/// Flags-byte bit for "row jump varint present".
pub const RJMP_BIT: u8 = 0x40;
/// Mask extracting the 6-bit pattern id.
pub const ID_MASK: u8 = 0x3F;

/// An encoded CSX stream: control bytes plus values in unit order.
#[derive(Debug, Clone, PartialEq)]
pub struct CtlStream {
    /// Control byte stream.
    pub ctl: Vec<u8>,
    /// Non-zero values, ordered by unit and element within unit.
    pub values: Vec<Val>,
    /// Number of encoded non-zeros.
    pub nnz: usize,
}

/// One decoded unit header (used by the generic walker).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitHeader {
    /// Row the unit is anchored in.
    pub row: Idx,
    /// Anchor column.
    pub col: Idx,
    /// Substructure pattern, or `None` for a delta unit.
    pub kind: Option<PatternKind>,
    /// Delta width for delta units.
    pub width: DeltaWidth,
    /// Element count.
    pub size: u32,
}

impl CtlStream {
    /// Encodes a detection result. `values` must index the same canonical
    /// matrix `det` was produced from.
    pub fn encode(det: &Detected, values: &CooIndex<'_>) -> CtlStream {
        // Group instance anchors and leftover elements by row.
        #[derive(Debug)]
        enum RowUnit {
            Inst(crate::detect::Instance),
            Delta {
                col: Idx,
                cols: Vec<Idx>,
                width: DeltaWidth,
            },
        }
        let mut per_row: std::collections::BTreeMap<Idx, Vec<RowUnit>> =
            std::collections::BTreeMap::new();
        for inst in &det.instances {
            per_row
                .entry(inst.row)
                .or_default()
                .push(RowUnit::Inst(*inst));
        }
        // Build delta units from the row-major-sorted leftovers.
        let mut i = 0usize;
        while i < det.leftover.len() {
            let row = det.leftover[i].0;
            let mut j = i;
            while j < det.leftover.len() && det.leftover[j].0 == row {
                j += 1;
            }
            let cols: Vec<Idx> = det.leftover[i..j].iter().map(|&(_, c)| c).collect();
            // Greedy chunking: width fixed by the first delta of the chunk.
            let mut s = 0usize;
            while s < cols.len() {
                let mut e = s + 1;
                let mut width = DeltaWidth::U8;
                if e < cols.len() {
                    width = DeltaWidth::for_delta(cols[e] - cols[e - 1]);
                    while e < cols.len()
                        && e - s < 255
                        && DeltaWidth::for_delta(cols[e] - cols[e - 1]).bytes() <= width.bytes()
                    {
                        e += 1;
                    }
                }
                per_row.entry(row).or_default().push(RowUnit::Delta {
                    col: cols[s],
                    cols: cols[s..e].to_vec(),
                    width,
                });
                s = e;
            }
            i = j;
        }

        let mut ctl = Vec::new();
        let mut vals = Vec::with_capacity(det.nnz);
        let mut prev_row: i64 = -1;
        for (&row, units) in per_row.iter_mut() {
            units.sort_by_key(|u| match u {
                RowUnit::Inst(i) => i.col,
                RowUnit::Delta { col, .. } => *col,
            });
            let mut prev_col: Idx = 0;
            for (k, unit) in units.iter().enumerate() {
                let new_row = k == 0;
                let (anchor_col, id, size) = match unit {
                    RowUnit::Inst(inst) => (inst.col, inst.kind.id(), inst.len),
                    RowUnit::Delta { col, cols, width } => {
                        (*col, PatternKind::delta_id(*width), cols.len() as u32)
                    }
                };
                debug_assert!((1..=255).contains(&size));

                let mut flags = id;
                let mut rjmp_extra = 0u64;
                if new_row {
                    flags |= NR_BIT;
                    let jump = i64::from(row) - prev_row;
                    debug_assert!(jump >= 1);
                    if jump > 1 {
                        flags |= RJMP_BIT;
                        rjmp_extra = (jump - 1) as u64;
                    }
                }
                ctl.push(flags);
                if flags & RJMP_BIT != 0 {
                    write_varint(&mut ctl, rjmp_extra);
                }
                ctl.push(size as u8);
                let ucol = if new_row {
                    u64::from(anchor_col)
                } else {
                    debug_assert!(anchor_col >= prev_col, "anchors must ascend in a row");
                    u64::from(anchor_col - prev_col)
                };
                write_varint(&mut ctl, ucol);

                match unit {
                    RowUnit::Inst(inst) => {
                        for (er, ec) in inst.elements() {
                            vals.push(values.value_at(er, ec));
                        }
                    }
                    RowUnit::Delta { cols, width, .. } => {
                        for w in cols.windows(2) {
                            let d = w[1] - w[0];
                            match width {
                                DeltaWidth::U8 => ctl.push(d as u8),
                                DeltaWidth::U16 => ctl.extend((d as u16).to_le_bytes()),
                                DeltaWidth::U32 => ctl.extend(d.to_le_bytes()),
                            }
                        }
                        for &c in cols {
                            vals.push(values.value_at(row, c));
                        }
                    }
                }
                prev_col = anchor_col;
                if new_row {
                    prev_row = i64::from(row);
                }
            }
        }
        CtlStream {
            ctl,
            values: vals,
            nnz: det.nnz,
        }
    }

    /// Walks the stream, invoking `on_unit` for each unit header and
    /// `on_element` for each element `(row, col, value)` in stream order.
    pub fn walk(
        &self,
        mut on_unit: impl FnMut(&UnitHeader),
        mut on_element: impl FnMut(Idx, Idx, Val),
    ) {
        let ctl = &self.ctl;
        let mut pos = 0usize;
        let mut vi = 0usize;
        let mut row: i64 = -1;
        let mut col: Idx = 0;
        while pos < ctl.len() {
            let flags = ctl[pos];
            pos += 1;
            if flags & NR_BIT != 0 {
                let extra = if flags & RJMP_BIT != 0 {
                    read_varint(ctl, &mut pos)
                } else {
                    0
                };
                row += 1 + extra as i64;
                col = 0;
            }
            let size = u32::from(ctl[pos]);
            pos += 1;
            let ucol = read_varint(ctl, &mut pos) as Idx;
            let anchor = if flags & NR_BIT != 0 {
                ucol
            } else {
                col + ucol
            };
            col = anchor;
            let id = flags & ID_MASK;
            let r = row as Idx;

            if let Some(kind) = PatternKind::from_id(id) {
                on_unit(&UnitHeader {
                    row: r,
                    col: anchor,
                    kind: Some(kind),
                    width: DeltaWidth::U8,
                    size,
                });
                for k in 0..size {
                    let (er, ec) = kind.element(r, anchor, k);
                    on_element(er, ec, self.values[vi]);
                    vi += 1;
                }
            } else {
                let width = PatternKind::delta_width_from_id(id)
                    .unwrap_or_else(|| unreachable!("invalid pattern id in ctl stream"));
                on_unit(&UnitHeader {
                    row: r,
                    col: anchor,
                    kind: None,
                    width,
                    size,
                });
                let mut c = anchor;
                on_element(r, c, self.values[vi]);
                vi += 1;
                for _ in 1..size {
                    let d: u32 = match width {
                        DeltaWidth::U8 => {
                            let d = u32::from(ctl[pos]);
                            pos += 1;
                            d
                        }
                        DeltaWidth::U16 => {
                            let d = u32::from(u16::from_le_bytes([ctl[pos], ctl[pos + 1]]));
                            pos += 2;
                            d
                        }
                        DeltaWidth::U32 => {
                            let d = u32::from_le_bytes([
                                ctl[pos],
                                ctl[pos + 1],
                                ctl[pos + 2],
                                ctl[pos + 3],
                            ]);
                            pos += 4;
                            d
                        }
                    };
                    c += d;
                    on_element(r, c, self.values[vi]);
                    vi += 1;
                }
            }
        }
        debug_assert_eq!(vi, self.values.len(), "value stream length mismatch");
    }

    /// Decodes the full element list (testing / conversions).
    pub fn decode_elements(&self) -> Vec<(Idx, Idx, Val)> {
        let mut out = Vec::with_capacity(self.values.len());
        self.walk(|_| {}, |r, c, v| out.push((r, c, v)));
        out
    }

    /// Total bytes of the representation: ctl stream plus 8-byte values.
    pub fn size_bytes(&self) -> usize {
        self.ctl.len() + 8 * self.values.len()
    }
}

/// Encodes a canonical COO matrix end-to-end (detect + encode).
pub fn encode_coo(coo: &CooMatrix, config: &crate::detect::DetectConfig) -> CtlStream {
    let det = crate::detect::analyze(coo, config);
    let vm = CooIndex::new(coo);
    CtlStream::encode(&det, &vm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::DetectConfig;

    fn round_trip(coo: &CooMatrix) {
        let mut c = coo.clone();
        c.canonicalize();
        let cfg = DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        };
        let stream = encode_coo(&c, &cfg);
        let mut decoded = stream.decode_elements();
        decoded.sort_unstable_by_key(|&(r, col, _)| (r, col));
        let original: Vec<(Idx, Idx, Val)> = c.iter().collect();
        assert_eq!(decoded, original, "ctl round trip mismatch");
    }

    #[test]
    fn round_trip_simple_patterns() {
        // Horizontal run + scattered elements + an empty-row gap.
        let mut coo = CooMatrix::new(10, 10);
        for c in 2..8 {
            coo.push(0, c, c as Val);
        }
        coo.push(3, 1, -1.0);
        coo.push(3, 9, -2.0);
        coo.push(9, 0, 7.0);
        round_trip(&coo);
    }

    #[test]
    fn round_trip_vertical_crossing_rows() {
        let mut coo = CooMatrix::new(12, 12);
        for r in 1..9 {
            coo.push(r, 4, r as Val);
        }
        coo.push(2, 7, 1.0);
        round_trip(&coo);
    }

    #[test]
    fn round_trip_blocks_and_diagonals() {
        let mut coo = CooMatrix::new(16, 16);
        for r in 0..3 {
            for c in 0..3 {
                coo.push(r + 5, c + 5, (r * 3 + c) as Val + 1.0);
            }
        }
        for k in 0..6 {
            coo.push(k + 8, k, 0.5 * k as Val + 1.0);
        }
        round_trip(&coo);
    }

    #[test]
    fn round_trip_wide_deltas() {
        // Deltas requiring u16 and u32 widths.
        let mut coo = CooMatrix::new(5, 200_000);
        coo.push(0, 0, 1.0);
        coo.push(0, 10, 2.0); // u8 delta
        coo.push(0, 1_000, 3.0); // u16 delta
        coo.push(0, 150_000, 4.0); // u32 delta
        round_trip(&coo);
    }

    #[test]
    fn round_trip_empty_matrix() {
        let coo = CooMatrix::new(4, 4);
        round_trip(&coo);
        let cfg = DetectConfig::default();
        let s = encode_coo(&coo, &cfg);
        assert!(s.ctl.is_empty());
        assert_eq!(s.size_bytes(), 0);
    }

    #[test]
    fn round_trip_single_element() {
        let mut coo = CooMatrix::new(100, 100);
        coo.push(57, 93, 3.25);
        round_trip(&coo);
    }

    #[test]
    fn unit_headers_report_rows() {
        let mut coo = CooMatrix::new(6, 6);
        coo.push(1, 0, 1.0);
        coo.push(4, 2, 2.0);
        coo.canonicalize();
        let cfg = DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        };
        let stream = encode_coo(&coo, &cfg);
        let mut rows = Vec::new();
        stream.walk(|u| rows.push(u.row), |_, _, _| {});
        assert_eq!(rows, vec![1, 4]);
    }

    #[test]
    fn compresses_versus_csr() {
        // A matrix dominated by long horizontal runs must encode far
        // smaller than CSR's 12 bytes/nnz.
        let mut coo = CooMatrix::new(64, 512);
        for r in 0..64u32 {
            for c in 0..128u32 {
                coo.push(r, c + (r % 3), (r + c) as Val);
            }
        }
        coo.canonicalize();
        let cfg = DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        };
        let s = encode_coo(&coo, &cfg);
        let csr_bytes = 12 * coo.nnz() + 4 * 65;
        assert!(
            s.size_bytes() < csr_bytes * 3 / 4,
            "CSX {} vs CSR {csr_bytes}",
            s.size_bytes()
        );
        // Nearly all metadata gone: ctl should be tiny relative to colind.
        assert!(
            s.ctl.len() < coo.nnz(),
            "ctl {} bytes for {} nnz",
            s.ctl.len(),
            coo.nnz()
        );
    }

    #[test]
    fn round_trip_generated_matrix() {
        let coo = symspmv_sparse::gen::banded_random(300, 12, 8.0, 5);
        round_trip(&coo);
    }
}

#[cfg(test)]
mod jump_tests {
    use super::*;
    use crate::detect::DetectConfig;
    use symspmv_sparse::CooMatrix;

    #[test]
    fn huge_row_jump_uses_multibyte_varint() {
        // Row jump of ~200k needs a 3-byte varint in the RJMP field.
        let mut coo = CooMatrix::new(300_000, 4);
        coo.push(0, 1, 1.0);
        coo.push(250_000, 2, 2.0);
        coo.canonicalize();
        let cfg = DetectConfig::default();
        let stream = encode_coo(&coo, &cfg);
        let decoded = stream.decode_elements();
        assert_eq!(decoded, vec![(0, 1, 1.0), (250_000, 2, 2.0)]);
    }

    #[test]
    fn first_unit_far_from_row_zero() {
        let mut coo = CooMatrix::new(1_000, 3);
        coo.push(999, 0, 7.0);
        let cfg = DetectConfig::default();
        let stream = encode_coo(&coo, &cfg);
        assert_eq!(stream.decode_elements(), vec![(999, 0, 7.0)]);
        // Head must carry RJMP (jump of 1000 > 1).
        assert_ne!(stream.ctl[0] & RJMP_BIT, 0);
    }

    #[test]
    fn wide_anchor_column_varint() {
        let mut coo = CooMatrix::new(2, 3_000_000);
        coo.push(1, 2_999_999, 4.0);
        let cfg = DetectConfig::default();
        let stream = encode_coo(&coo, &cfg);
        assert_eq!(stream.decode_elements(), vec![(1, 2_999_999, 4.0)]);
    }

    #[test]
    fn many_units_in_one_row_use_column_deltas() {
        // Alternate substructure-eligible runs and isolated elements so
        // several units share a row; non-first units must decode via the
        // relative ucol path.
        let mut coo = CooMatrix::new(2, 4_000);
        for c in 0..8 {
            coo.push(0, c * 2, 1.0); // stride-2 horizontal run
        }
        coo.push(0, 1_000, 2.0);
        for c in 0..6 {
            coo.push(0, 2_000 + c, 3.0); // stride-1 horizontal run
        }
        coo.canonicalize();
        let cfg = DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        };
        let stream = encode_coo(&coo, &cfg);
        let mut units = 0;
        stream.walk(|_| units += 1, |_, _, _| {});
        assert!(units >= 3, "expected several units in the row, got {units}");
        let mut decoded = stream.decode_elements();
        decoded.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let expect: Vec<(u32, u32, f64)> = coo.iter().collect();
        assert_eq!(decoded, expect);
    }
}
