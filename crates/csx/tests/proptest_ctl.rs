//! Randomized tests for the ctl encode/decode pipeline.
//!
//! Formerly proptest-based; now driven by the workspace's own seeded
//! [`StdRng`] so the coverage survives without external crates and every
//! case is exactly reproducible from its loop index.

use symspmv_csx::detect::DetectConfig;
use symspmv_csx::encode::encode_coo;
use symspmv_csx::matrix::CsxMatrix;
use symspmv_sparse::rng::StdRng;
use symspmv_sparse::{CooMatrix, Idx};

const CASES: u64 = 64;

/// Random sparse pattern in a (rows × cols) box, with values keyed to the
/// coordinates so misplaced values are detected.
fn random_coo(rng: &mut StdRng, max_dim: Idx, max_nnz: usize) -> CooMatrix {
    let nr = rng.random_range(2..max_dim);
    let nc = rng.random_range(2..max_dim);
    let mut coo = CooMatrix::new(nr, nc);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.random_range(0..=max_nnz) {
        let r = rng.random_range(0..nr);
        let c = rng.random_range(0..nc);
        if seen.insert((r, c)) {
            coo.push(r, c, (r as f64) * 1e4 + c as f64 + 0.5);
        }
    }
    coo.canonicalize();
    coo
}

fn configs() -> Vec<DetectConfig> {
    vec![
        DetectConfig::default(),
        DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        },
        DetectConfig {
            min_run_len: 2,
            min_coverage: 0.0,
            ..DetectConfig::default()
        },
        DetectConfig {
            candidate_families: vec![],
            ..DetectConfig::default()
        },
        DetectConfig {
            col_split: Some(7),
            min_coverage: 0.0,
            ..DetectConfig::default()
        },
    ]
}

#[test]
fn encode_decode_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x10_0000 + case);
        let coo = random_coo(&mut rng, 80, 300);
        for cfg in configs() {
            let stream = encode_coo(&coo, &cfg);
            assert_eq!(stream.values.len(), coo.nnz(), "case {case}");
            let mut decoded = stream.decode_elements();
            decoded.sort_unstable_by_key(|&(r, c, _)| (r, c));
            let original: Vec<(Idx, Idx, f64)> = coo.iter().collect();
            assert_eq!(decoded, original, "case {case}");
        }
    }
}

#[test]
fn spmv_equals_reference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x20_0000 + case);
        let coo = random_coo(&mut rng, 60, 250);
        let x = symspmv_sparse::dense::seeded_vector(coo.ncols() as usize, 5);
        let mut y_ref = vec![0.0; coo.nrows() as usize];
        coo.spmv_reference(&x, &mut y_ref);
        for cfg in configs() {
            let m = CsxMatrix::from_canonical_coo(&coo, &cfg);
            let mut y = vec![0.0; coo.nrows() as usize];
            m.spmv(&x, &mut y);
            for (a, b) in y.iter().zip(&y_ref) {
                assert!((a - b).abs() < 1e-9, "case {case}: {a} vs {b}");
            }
        }
    }
}

#[test]
fn size_never_exceeds_coo_equivalent() {
    // CSX can always fall back to delta units; its size must stay below
    // a 16-byte-per-element COO bound plus small per-row overhead.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x30_0000 + case);
        let coo = random_coo(&mut rng, 60, 250);
        let cfg = DetectConfig::default();
        let stream = encode_coo(&coo, &cfg);
        let bound = 16 * coo.nnz() + 8 * coo.nrows() as usize + 64;
        assert!(
            stream.size_bytes() <= bound,
            "case {case}: {} bytes for {} nnz",
            stream.size_bytes(),
            coo.nnz()
        );
    }
}

#[test]
fn col_split_never_straddled() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x40_0000 + case);
        let coo = random_coo(&mut rng, 60, 250);
        let split = rng.random_range(1u32..60);
        let cfg = DetectConfig {
            col_split: Some(split),
            min_coverage: 0.0,
            ..DetectConfig::default()
        };
        let det = symspmv_csx::detect::analyze(&coo, &cfg);
        for inst in &det.instances {
            let lo = inst.elements().any(|(_, c)| c < split);
            let hi = inst.elements().any(|(_, c)| c >= split);
            assert!(
                !(lo && hi),
                "case {case}: instance {inst:?} straddles {split}"
            );
        }
    }
}
