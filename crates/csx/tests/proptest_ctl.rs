//! Property tests for the ctl encode/decode pipeline.

use proptest::prelude::*;
use symspmv_csx::detect::DetectConfig;
use symspmv_csx::encode::encode_coo;
use symspmv_csx::matrix::CsxMatrix;
use symspmv_sparse::{CooMatrix, Idx};

/// Arbitrary sparse pattern in a (rows × cols) box, with values keyed to
/// the coordinates so misplaced values are detected.
fn arb_coo(max_dim: Idx, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (2..max_dim, 2..max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc), 0..max_nnz).prop_map(move |pts| {
            let mut coo = CooMatrix::new(nr, nc);
            let mut seen = std::collections::HashSet::new();
            for (r, c) in pts {
                if seen.insert((r, c)) {
                    coo.push(r, c, (r as f64) * 1e4 + c as f64 + 0.5);
                }
            }
            coo.canonicalize();
            coo
        })
    })
}

fn configs() -> Vec<DetectConfig> {
    vec![
        DetectConfig::default(),
        DetectConfig { min_coverage: 0.0, ..DetectConfig::default() },
        DetectConfig { min_run_len: 2, min_coverage: 0.0, ..DetectConfig::default() },
        DetectConfig { candidate_families: vec![], ..DetectConfig::default() },
        DetectConfig { col_split: Some(7), min_coverage: 0.0, ..DetectConfig::default() },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_round_trip(coo in arb_coo(80, 300)) {
        for cfg in configs() {
            let stream = encode_coo(&coo, &cfg);
            prop_assert_eq!(stream.values.len(), coo.nnz());
            let mut decoded = stream.decode_elements();
            decoded.sort_unstable_by_key(|&(r, c, _)| (r, c));
            let original: Vec<(Idx, Idx, f64)> = coo.iter().collect();
            prop_assert_eq!(decoded, original);
        }
    }

    #[test]
    fn spmv_equals_reference(coo in arb_coo(60, 250)) {
        let x = symspmv_sparse::dense::seeded_vector(coo.ncols() as usize, 5);
        let mut y_ref = vec![0.0; coo.nrows() as usize];
        coo.spmv_reference(&x, &mut y_ref);
        for cfg in configs() {
            let m = CsxMatrix::from_canonical_coo(&coo, &cfg);
            let mut y = vec![0.0; coo.nrows() as usize];
            m.spmv(&x, &mut y);
            for (a, b) in y.iter().zip(&y_ref) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn size_never_exceeds_coo_equivalent(coo in arb_coo(60, 250)) {
        // CSX can always fall back to delta units; its size must stay below
        // a 16-byte-per-element COO bound plus small per-row overhead.
        let cfg = DetectConfig::default();
        let stream = encode_coo(&coo, &cfg);
        let bound = 16 * coo.nnz() + 8 * coo.nrows() as usize + 64;
        prop_assert!(stream.size_bytes() <= bound,
            "{} bytes for {} nnz", stream.size_bytes(), coo.nnz());
    }

    #[test]
    fn col_split_never_straddled(coo in arb_coo(60, 250), split in 1u32..60) {
        let cfg = DetectConfig {
            col_split: Some(split),
            min_coverage: 0.0,
            ..DetectConfig::default()
        };
        let det = symspmv_csx::detect::analyze(&coo, &cfg);
        for inst in &det.instances {
            let lo = inst.elements().any(|(_, c)| c < split);
            let hi = inst.elements().any(|(_, c)| c >= split);
            prop_assert!(!(lo && hi), "instance {inst:?} straddles {split}");
        }
    }
}
