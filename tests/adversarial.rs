//! Pathological-structure battery: every kernel must handle the shapes
//! that break naive partitioning, conflict analysis, or detection logic.

use symspmv::runtime::ExecutionContext;
use symspmv::sparse::dense::{assert_vec_close, seeded_vector};
use symspmv::sparse::{CooMatrix, Idx};
use symspmv_harness::kernels::{build_kernel, KernelSpec};

fn specs() -> Vec<KernelSpec> {
    [
        "csr",
        "csx",
        "bcsr",
        "csb",
        "csb-sym",
        "sss-naive",
        "sss-eff",
        "sss-idx",
        "sss-atomic",
        "sss-color",
        "csxsym-idx",
    ]
    .iter()
    .map(|s| KernelSpec::parse(s).unwrap())
    .collect()
}

fn check_all(name: &str, coo: &CooMatrix) {
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 0xAD);
    let mut y_ref = vec![0.0; n];
    let mut canon = coo.clone();
    canon.canonicalize();
    canon.spmv_reference(&x, &mut y_ref);
    for p in [1usize, 3, 7] {
        let ctx = ExecutionContext::new(p);
        for spec in specs() {
            let mut k = build_kernel(spec, coo, &ctx)
                .unwrap_or_else(|e| panic!("{name}/{}/{p}: build failed: {e}", spec.name()));
            let mut y = vec![f64::NAN; n];
            k.spmv(&x, &mut y);
            assert_vec_close(&y, &y_ref, 1e-11);
        }
    }
}

fn diag(n: Idx) -> CooMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, (i % 7) as f64 + 1.0);
    }
    coo
}

#[test]
fn diagonal_only() {
    check_all("diagonal_only", &diag(97));
}

#[test]
fn dense_first_column() {
    // Every row conflicts on column 0 — the worst case for the indexing
    // split restriction, coloring, and atomic contention.
    let mut coo = diag(80);
    for r in 1..80u32 {
        coo.push(r, 0, -0.25);
        coo.push(0, r, -0.25);
    }
    check_all("dense_first_column", &coo);
}

#[test]
fn dense_last_row() {
    // Every column conflicts into the final partition.
    let mut coo = diag(80);
    for c in 0..79u32 {
        coo.push(79, c, 0.5);
        coo.push(c, 79, 0.5);
    }
    check_all("dense_last_row", &coo);
}

#[test]
fn arrow_matrix() {
    // Dense first row+column and diagonal — the classic arrow.
    let mut coo = diag(64);
    for k in 1..64u32 {
        coo.push(k, 0, -1.0 / k as f64);
        coo.push(0, k, -1.0 / k as f64);
    }
    check_all("arrow", &coo);
}

#[test]
fn single_dense_block() {
    // One fully dense 24x24 block in a large empty matrix: exercises block
    // detection, CSB block addressing and ragged remainders.
    let mut coo = CooMatrix::new(301, 301);
    for i in 0..301u32 {
        coo.push(i, i, 3.0);
    }
    for r in 100..124u32 {
        for c in 100..124u32 {
            if r != c {
                coo.push(r, c, 0.01 * (r + c) as f64);
                let _ = c;
            }
        }
    }
    // Symmetrize the block (it is already symmetric in values by formula).
    check_all("single_dense_block", &coo);
}

#[test]
fn empty_leading_and_trailing_rows() {
    // Long empty stretches exercise the RJMP path and empty partitions.
    let mut coo = CooMatrix::new(500, 500);
    for (r, c, v) in [
        (200u32, 200u32, 5.0),
        (201, 200, -1.0),
        (200, 201, -1.0),
        (201, 201, 5.0),
    ] {
        coo.push(r, c, v);
    }
    check_all("empty_stretches", &coo);
}

#[test]
fn long_single_row_runs() {
    // One row with a 255+-element horizontal run (unit-size chunking) plus
    // its symmetric counterpart column.
    let n = 600u32;
    let mut coo = diag(n);
    for c in 0..300u32 {
        coo.push(599, c, 0.001 * c as f64 + 0.1);
        coo.push(c, 599, 0.001 * c as f64 + 0.1);
    }
    check_all("long_runs", &coo);
}

#[test]
fn checkerboard() {
    // Anti-diagonal-friendly structure with no horizontal runs.
    let n = 96u32;
    let mut coo = diag(n);
    for r in 0..n {
        let c = n - 1 - r;
        if c < r {
            coo.push(r, c, -0.5);
            coo.push(c, r, -0.5);
        }
    }
    check_all("checkerboard", &coo);
}
