//! Unsafe-audit lint: every `unsafe` block in the workspace must carry a
//! `// SAFETY(cert: <invariant>)` annotation referencing a *named* race
//! certificate invariant, and every `unsafe fn`/`unsafe trait` must
//! document its contract. The same scan backs the standalone binary
//! (`cargo run -p symspmv-verify --bin audit`); this test fails CI when a
//! bare `unsafe` slips in.

use symspmv_verify::audit::{audit_source, audit_workspace, Violation, KNOWN_INVARIANTS};
use symspmv_verify::rules::{default_rules, run_rules};

fn workspace_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_has_no_unannotated_unsafe() {
    let report = audit_workspace(&workspace_root()).expect("workspace scan must succeed");
    assert!(
        !report.sites.is_empty(),
        "the scanner must find the kernels' unsafe blocks — an empty \
         report means the scan is broken, not that the code is safe"
    );
    let violations: Vec<_> = report.violations().collect();
    assert!(
        violations.is_empty(),
        "unannotated or mis-annotated unsafe:\n{}",
        violations
            .iter()
            .map(|s| format!(
                "  {}:{}: {}",
                s.file.display(),
                s.line,
                s.violation
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_default()
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Self-test demanded by the acceptance criteria: injecting an unannotated
/// block into the scan must produce a violation — proving the lint can
/// actually fail, not that it vacuously passes.
#[test]
fn injected_unannotated_block_is_flagged() {
    let src = "fn f(p: *mut u8) {\n    unsafe { *p = 0; }\n}\n";
    let sites = audit_source(std::path::Path::new("injected.rs"), src);
    assert_eq!(sites.len(), 1);
    assert_eq!(sites[0].line, 2);
    assert!(matches!(sites[0].violation, Some(Violation::Unannotated)));
}

/// An annotation naming an invariant outside the registry is as bad as no
/// annotation: the certificate it claims to reference does not exist.
#[test]
fn unknown_invariant_is_flagged() {
    let src = "fn f(p: *mut u8) {\n    // SAFETY(cert: made-up-invariant): trust me.\n    unsafe { *p = 0; }\n}\n";
    let sites = audit_source(std::path::Path::new("injected.rs"), src);
    assert!(matches!(
        sites[0].violation,
        Some(Violation::UnknownInvariant(_))
    ));
}

/// The workspace is clean under the full rule engine too — the registry
/// that the `audit` binary and the CI `analysis` job run.
#[test]
fn workspace_is_clean_under_the_rule_engine() {
    let rules = default_rules();
    let findings = run_rules(&workspace_root(), &rules).expect("workspace scan must succeed");
    assert!(
        findings.is_empty(),
        "rule findings:\n{}",
        findings
            .iter()
            .map(|f| format!(
                "  {}:{}: [{}] {}",
                f.file.display(),
                f.line,
                f.rule,
                f.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Regression for the walker gap: the original unsafe lint missed
/// `crates/*/src/bin` targets (and the workspace `src/`). A violation
/// planted in a synthetic bin target must be found by the rule engine's
/// walk — if the walker regresses to `src/lib.rs`-only, this fails.
#[test]
fn violation_planted_in_a_bin_target_is_caught() {
    let scratch = std::env::temp_dir().join(format!("symspmv-lint-walk-{}", std::process::id()));
    let bin_dir = scratch.join("crates/tool/src/bin");
    std::fs::create_dir_all(&bin_dir).expect("scratch tree");
    std::fs::write(
        bin_dir.join("planted.rs"),
        "fn main() {\n    let p = std::ptr::null_mut::<u8>();\n    unsafe { *p = 0; }\n}\n",
    )
    .expect("planted source");
    // A clean library file alongside, so the walk covers both layouts.
    std::fs::write(
        scratch.join("crates/tool/src").join("lib.rs"),
        "pub fn fine() {}\n",
    )
    .expect("clean source");

    let findings = run_rules(&scratch, &default_rules()).expect("scratch walk");
    let _ = std::fs::remove_dir_all(&scratch);

    assert!(
        findings.iter().any(|f| f.rule == "unsafe-annotation"
            && f.file
                .to_string_lossy()
                .replace('\\', "/")
                .contains("src/bin/planted.rs")),
        "the planted bin-target violation was not found: {findings:?}"
    );
}

/// The invariant registry stays meaningful: every name the kernels cite is
/// registered, and the registry carries its rationale strings.
#[test]
fn invariant_registry_is_well_formed() {
    assert!(KNOWN_INVARIANTS.len() >= 8);
    for (name, why) in KNOWN_INVARIANTS {
        assert!(!name.is_empty() && !why.is_empty());
        assert!(
            name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
            "invariant names are kebab-case: {name}"
        );
    }
    // No duplicates.
    let mut names: Vec<_> = KNOWN_INVARIANTS.iter().map(|(n, _)| n).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), KNOWN_INVARIANTS.len());
}
