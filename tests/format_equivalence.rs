//! Cross-crate integration: every storage format × reduction method ×
//! thread count must compute the same product as the dense reference, on
//! representatives of every suite structure class.

use symspmv::runtime::ExecutionContext;
use symspmv::sparse::dense::{assert_vec_close, seeded_vector};
use symspmv::sparse::suite;
use symspmv_harness::kernels::{build_kernel, KernelSpec};

fn reference(coo: &symspmv::sparse::CooMatrix, x: &[f64]) -> Vec<f64> {
    let mut c = coo.clone();
    c.canonicalize();
    let mut y = vec![0.0; c.nrows() as usize];
    c.spmv_reference(x, &mut y);
    y
}

fn all_specs() -> Vec<KernelSpec> {
    let mut v = KernelSpec::figure9_lineup();
    for s in KernelSpec::figure11_lineup() {
        if !v.contains(&s) {
            v.push(s);
        }
    }
    // Also the non-paper combinations (CSX-Sym with naive/effective) and
    // the related-work kernels.
    v.push(KernelSpec::parse("csxsym-naive").unwrap());
    v.push(KernelSpec::parse("csxsym-eff").unwrap());
    v.push(KernelSpec::parse("sss-atomic").unwrap());
    v.push(KernelSpec::parse("csb").unwrap());
    v.push(KernelSpec::parse("csb-sym").unwrap());
    v.push(KernelSpec::parse("bcsr").unwrap());
    v.push(KernelSpec::parse("sss-color").unwrap());
    v.push(KernelSpec::parse("hybrid-idx").unwrap());
    v.push(KernelSpec::parse("hybrid-eff").unwrap());
    v
}

#[test]
fn suite_classes_all_kernels_all_thread_counts() {
    // One representative per structure class, small scale for speed.
    for name in ["bmw7st_1", "parabolic_fem", "G3_circuit", "nd12k"] {
        let spec = suite::spec_by_name(name).unwrap();
        let m = suite::generate(spec, 0.003);
        let n = m.coo.nrows() as usize;
        let x = seeded_vector(n, 0x77);
        let y_ref = reference(&m.coo, &x);
        for p in [1usize, 2, 5, 8] {
            let ctx = ExecutionContext::new(p);
            for ks in all_specs() {
                let mut k = build_kernel(ks, &m.coo, &ctx).unwrap();
                let mut y = vec![f64::NAN; n];
                k.spmv(&x, &mut y);
                assert_vec_close(&y, &y_ref, 1e-11);
            }
        }
    }
}

#[test]
fn repeated_invocations_are_stable() {
    // Locals must be re-zeroed between iterations by every method; 20
    // iterations with vector swapping must match 20 serial applications.
    let m = suite::generate(suite::spec_by_name("offshore").unwrap(), 0.004);
    let n = m.coo.nrows() as usize;
    let ctx = ExecutionContext::new(4);
    for ks in all_specs() {
        let mut k = build_kernel(ks, &m.coo, &ctx).unwrap();
        let mut x = seeded_vector(n, 1);
        let mut y = vec![0.0; n];
        let mut x_ref = x.clone();
        for _ in 0..20 {
            k.spmv(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
            let y_ref = reference(&m.coo, &x_ref);
            x_ref = y_ref;
            // Compare with loose tolerance: values grow geometrically.
            let scale = x_ref.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for (a, b) in x.iter().zip(&x_ref) {
                assert!(
                    (a - b).abs() <= 1e-9 * scale,
                    "{}: divergence {a} vs {b} (scale {scale})",
                    k.name()
                );
            }
        }
    }
}

#[test]
fn size_ordering_matches_paper_on_structural_matrices() {
    // CSX-Sym < SSS < CSR in bytes on a block-structural matrix.
    let m = suite::generate(suite::spec_by_name("hood").unwrap(), 0.01);
    let ctx = ExecutionContext::new(2);
    let csr = build_kernel(KernelSpec::Csr, &m.coo, &ctx).unwrap();
    let sss = build_kernel(KernelSpec::parse("sss-idx").unwrap(), &m.coo, &ctx).unwrap();
    let csx_sym = build_kernel(KernelSpec::parse("csxsym-idx").unwrap(), &m.coo, &ctx).unwrap();
    assert!(csx_sym.size_bytes() < sss.size_bytes());
    assert!(sss.size_bytes() < csr.size_bytes());
    // SSS halves CSR asymptotically.
    let ratio = sss.size_bytes() as f64 / csr.size_bytes() as f64;
    assert!(ratio < 0.62, "SSS/CSR ratio {ratio}");
}

#[test]
fn flop_accounting_consistent_across_formats() {
    let m = suite::generate(suite::spec_by_name("consph").unwrap(), 0.004);
    let specs = all_specs();
    let ctx = ExecutionContext::new(2);
    let flops: Vec<u64> = specs
        .iter()
        .map(|&s| build_kernel(s, &m.coo, &ctx).unwrap().flops())
        .collect();
    // Symmetric formats count the dense diagonal, CSR counts stored nnz —
    // they must agree within the diagonal contribution.
    let max = *flops.iter().max().unwrap();
    let min = *flops.iter().min().unwrap();
    assert!(
        (max - min) as f64 / max as f64 <= 2.0 * m.coo.nrows() as f64 / min as f64,
        "flop models diverge: {flops:?}"
    );
}
