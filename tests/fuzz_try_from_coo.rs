//! Seeded randomized malformed-COO generator fed to every `try_from_coo`
//! constructor in the workspace.
//!
//! Each round builds a valid random symmetric matrix, applies one random
//! corruption, and asserts that every constructor reports a structured
//! error (or, for corruptions a format legitimately tolerates, succeeds) —
//! and that none of them panic. Deterministic: same seed, same corpus.

use symspmv::core::{ReductionMethod, SymFormat, SymSpmv, SymSpmvError};
use symspmv::csb::{CsbMatrix, CsbSymMatrix};
use symspmv::csx::{CsxMatrix, DetectConfig};
use symspmv::runtime::ExecutionContext;
use symspmv::sparse::{BcsrMatrix, CooMatrix, CsrMatrix, SparseError, SssMatrix};

/// xorshift64* — deterministic, no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn val(&mut self) -> f64 {
        (self.below(2000) as f64 - 1000.0) / 100.0
    }
}

/// A valid random symmetric matrix with a positive diagonal.
fn valid_symmetric(rng: &mut Rng, n: u32) -> CooMatrix {
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        coo.push(r, r, 4.0 + rng.val().abs());
    }
    for _ in 0..(n * 2) {
        let r = rng.below(n as u64) as u32;
        let c = rng.below(n as u64) as u32;
        if r == c {
            continue;
        }
        let v = rng.val();
        coo.push(r, c, v);
        coo.push(c, r, v);
    }
    coo.canonicalize();
    coo
}

/// Value corruptions every format must reject. Out-of-range indices are
/// unrepresentable in a [`CooMatrix`] (`push` asserts bounds), so that class
/// is fuzzed at the `from_triplets` boundary in its own test below.
#[derive(Debug, Clone, Copy)]
enum Corruption {
    NanValue,
    InfValue,
}

fn corrupt(coo: &CooMatrix, rng: &mut Rng, kind: Corruption) -> CooMatrix {
    let n = coo.nrows();
    let mut bad = coo.clone();
    // Keep the pattern symmetric (inject on the diagonal) so only the
    // non-finite value trips, not an incidental asymmetry.
    let v = match kind {
        Corruption::NanValue => f64::NAN,
        Corruption::InfValue => f64::INFINITY,
    };
    let r = rng.below(n as u64) as u32;
    bad.push(r, r, v);
    bad
}

/// Runs every constructor on `coo`; returns per-constructor results.
/// Panics (the test failure mode) if any constructor panics.
fn feed_all(coo: &CooMatrix, ctx: &std::sync::Arc<ExecutionContext>) -> Vec<(&'static str, bool)> {
    let csx_cfg = DetectConfig::default();
    let mut results = Vec::new();
    let mut check = |name: &'static str, ok: bool| results.push((name, ok));
    check("csr", CsrMatrix::try_from_coo(coo).is_ok());
    check("bcsr", BcsrMatrix::try_from_coo(coo, 2, 2).is_ok());
    check("sss", SssMatrix::try_from_coo(coo, 0.0).is_ok());
    check("csb", CsbMatrix::try_from_coo(coo, None).is_ok());
    check("csb-sym", CsbSymMatrix::try_from_coo(coo, None).is_ok());
    check("csx", CsxMatrix::try_from_coo(coo, &csx_cfg).is_ok());
    check(
        "symspmv",
        SymSpmv::try_from_coo(coo, ctx, ReductionMethod::Indexing, SymFormat::Sss).is_ok(),
    );
    results
}

#[test]
fn corrupted_matrices_are_rejected_by_every_constructor() {
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);
    let ctx = ExecutionContext::new(2);
    let kinds = [Corruption::NanValue, Corruption::InfValue];
    for round in 0..40 {
        let n = 4 + rng.below(28) as u32;
        let base = valid_symmetric(&mut rng, n);

        // Sanity: the uncorrupted base constructs everywhere.
        for (name, ok) in feed_all(&base, &ctx) {
            assert!(ok, "round {round}: valid base rejected by {name}");
        }

        let kind = kinds[rng.below(kinds.len() as u64) as usize];
        let bad = corrupt(&base, &mut rng, kind);
        for (name, ok) in feed_all(&bad, &ctx) {
            assert!(
                !ok,
                "round {round}: {kind:?} corruption accepted by {name} (n={n})"
            );
        }
    }
}

#[test]
fn out_of_range_indices_never_reach_the_formats() {
    // `CooMatrix::push` asserts bounds, so the only way triplet data with a
    // wild index can enter the pipeline is `from_triplets` (or the
    // MatrixMarket reader, covered by the malformed-fixture corpus). That
    // boundary must report a structured error, never construct the matrix.
    let mut rng = Rng(0x0FF5_1DE5_0000_0003);
    for round in 0..40 {
        let n = 4 + rng.below(28) as u32;
        let base = valid_symmetric(&mut rng, n);
        let mut rows = base.row_indices().to_vec();
        let mut cols = base.col_indices().to_vec();
        let vals = base.values().to_vec();
        let slot = rng.below(rows.len() as u64) as usize;
        let wild = n + rng.below(100) as u32;
        if rng.below(2) == 0 {
            rows[slot] = wild;
        } else {
            cols[slot] = wild;
        }
        let res = CooMatrix::from_triplets(n, n, rows, cols, vals);
        assert!(
            matches!(res, Err(SparseError::IndexOutOfBounds { .. })),
            "round {round}: wild index {wild} in a {n}x{n} matrix must be rejected"
        );
    }
}

#[test]
fn asymmetry_rejected_by_symmetric_formats_only() {
    let mut rng = Rng(0xBAD_C0DE_0000_0002);
    let ctx = ExecutionContext::new(2);
    for round in 0..20 {
        let n = 6 + rng.below(20) as u32;
        let mut coo = valid_symmetric(&mut rng, n);
        // Inject a strictly-lower entry at a coordinate whose mirror is
        // absent: legal for unsymmetric formats, fatal for symmetric ones.
        let (r, c) = loop {
            let r = 1 + rng.below((n - 1) as u64) as u32;
            let c = rng.below(r as u64) as u32;
            if coo.find(r, c).is_none() && coo.find(c, r).is_none() {
                break (r, c);
            }
        };
        coo.push(r, c, 9.75);
        coo.canonicalize();

        assert!(CsrMatrix::try_from_coo(&coo).is_ok(), "round {round}");
        assert!(CsxMatrix::try_from_coo(&coo, &DetectConfig::default()).is_ok());
        assert!(CsbMatrix::try_from_coo(&coo, None).is_ok());

        let err = SssMatrix::try_from_coo(&coo, 0.0).unwrap_err();
        assert!(matches!(err, SparseError::NotSymmetric { .. }), "{err:?}");
        assert!(CsbSymMatrix::try_from_coo(&coo, None).is_err());
        let err = SymSpmv::try_from_coo(&coo, &ctx, ReductionMethod::Naive, SymFormat::Sss)
            .err()
            .expect("asymmetric input must be rejected");
        assert!(
            matches!(err, SymSpmvError::InvalidStructure(_)),
            "asymmetry must classify as InvalidStructure, got {err:?}"
        );
    }
}

#[test]
fn invalid_arguments_are_structured_errors() {
    let coo = valid_symmetric(&mut Rng(7), 8);
    assert!(matches!(
        BcsrMatrix::try_from_coo(&coo, 0, 2),
        Err(SparseError::InvalidArgument { .. })
    ));
    assert!(matches!(
        CsbMatrix::try_from_coo(&coo, Some(0)),
        Err(SparseError::InvalidArgument { .. })
    ));
    assert!(matches!(
        CsbSymMatrix::try_from_coo(&coo, Some(1 << 17)),
        Err(SparseError::InvalidArgument { .. })
    ));
    assert!(matches!(
        SssMatrix::try_from_coo(&coo, f64::NAN),
        Err(SparseError::InvalidArgument { .. })
    ));
}
