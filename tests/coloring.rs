//! Property suite for the RACE-style recursive level-grouping coloring
//! (`symspmv::reorder::color`) — the schedule behind the reduction-free
//! `sss-race` strategy.
//!
//! Three properties, each checked on seeded random matrices **and** the
//! conformance fixtures:
//!
//! 1. **Partition**: every row lands in exactly one group, the group
//!    tables mirror `group_of`, and no group is empty.
//! 2. **Distance-2 disjointness**: no two rows of one group share any
//!    element of their full-adjacency write sets `{r} ∪ N(r)` — checked
//!    against the *symmetric* pattern (both triangles), which is strictly
//!    stronger than the lower-triangle write sets the kernel needs.
//! 3. **Pinned group counts**: the number of groups per fixture is pinned,
//!    so a regression that silently coarsens (more barriers) or merges
//!    (racy!) the schedule fails loudly.

use symspmv::reorder::{level_color_lower, LevelColoring};
use symspmv::sparse::rng::StdRng;
use symspmv::sparse::symmetry::SymmetryKind;
use symspmv::sparse::{CooMatrix, SssMatrix};

const CASES: u64 = 40;

/// A random symmetric pattern: diagonally dominated symmetrization of a
/// random strictly-lower sprinkle (same family as `proptest_invariants`).
fn sym_matrix(rng: &mut StdRng) -> CooMatrix {
    let n = rng.random_range(2u32..80);
    let mut lower = CooMatrix::new(n, n);
    for _ in 0..rng.random_range(0usize..220) {
        let r = rng.random_range(0..n);
        let c = rng.random_range(0..n);
        if c < r {
            lower.push(r, c, rng.random_range(-1.0..-0.01));
        }
    }
    lower.canonicalize();
    symspmv::sparse::gen::spd_from_lower(&lower, 1.0)
}

/// Full symmetric adjacency (both triangles, no diagonal) from the strict
/// lower pattern of an SSS matrix.
fn full_adjacency(sss: &SssMatrix) -> Vec<Vec<u32>> {
    let n = sss.n() as usize;
    let mut adj = vec![Vec::new(); n];
    for r in 0..n {
        let lo = sss.rowptr()[r] as usize;
        let hi = sss.rowptr()[r + 1] as usize;
        for &c in &sss.colind()[lo..hi] {
            adj[r].push(c);
            adj[c as usize].push(r as u32);
        }
    }
    adj
}

/// Checks properties 1 and 2 on one matrix; panics with `tag` context.
fn assert_coloring_sound(sss: &SssMatrix, coloring: &LevelColoring, tag: &str) {
    let n = sss.n() as usize;

    // Property 1: partition. Every row appears in exactly one group, and
    // the group tables agree with the per-row assignment.
    let mut seen = vec![false; n];
    for (gid, rows) in coloring.groups.iter().enumerate() {
        assert!(!rows.is_empty(), "{tag}: group {gid} is empty");
        for &r in rows {
            assert!(
                !seen[r as usize],
                "{tag}: row {r} appears in more than one group"
            );
            seen[r as usize] = true;
            assert_eq!(
                coloring.group_of[r as usize] as usize, gid,
                "{tag}: group table and group_of disagree on row {r}"
            );
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "{tag}: some row is missing from every group"
    );

    // Property 2: distance-2 disjointness against the full symmetric
    // adjacency. Within one group, the write sets {r} ∪ N(r) of any two
    // rows are disjoint — equivalently, no element of the matrix is
    // claimed twice by one group.
    let adj = full_adjacency(sss);
    let mut claimed_in = vec![u32::MAX; n];
    let mut claimed_by = vec![u32::MAX; n];
    for (gid, rows) in coloring.groups.iter().enumerate() {
        for &r in rows {
            let mut targets = vec![r];
            targets.extend_from_slice(&adj[r as usize]);
            for t in targets {
                let t = t as usize;
                assert!(
                    !(claimed_in[t] == gid as u32 && claimed_by[t] != r),
                    "{tag}: rows {} and {r} of group {gid} share write target {t}",
                    claimed_by[t]
                );
                claimed_in[t] = gid as u32;
                claimed_by[t] = r;
            }
        }
    }
}

#[test]
fn coloring_is_partition_and_distance2_disjoint_random() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC010 + case);
        let coo = sym_matrix(&mut rng);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let coloring = level_color_lower(sss.n(), sss.rowptr(), sss.colind());
        assert_coloring_sound(&sss, &coloring, &format!("case {case}"));
    }
}

#[test]
fn coloring_sound_on_conformance_fixtures() {
    for m in symspmv_harness::conformance::full_suite() {
        let sss = SssMatrix::from_coo_kind(&m.coo, m.kind, 0.0).unwrap();
        let coloring = level_color_lower(sss.n(), sss.rowptr(), sss.colind());
        assert_coloring_sound(&sss, &coloring, m.repro);
    }
}

/// The group count per fixture is an exact schedule fingerprint: fewer
/// groups than pinned means two conflicting groups merged (a data race the
/// certifiers must reject); more means the recursion degraded (extra
/// barriers, a performance regression). Both fail here first.
#[test]
fn group_counts_pinned_per_fixture() {
    let pinned: &[(&str, usize)] = &[
        ("gen::banded_random(257, 16, 6.0, 91)", 32),
        ("gen::mixed_bandwidth(301, 7.0, 0.3, 5, 92)", 90),
        ("gen::laplacian_2d(18, 18)", 6),
        ("gen::skew_convection(240, 11, 5.0, 93)", 23),
        ("gen::structural_random(263, 6.0, 0.4, 6, 94)", 70),
    ];
    let suite = symspmv_harness::conformance::full_suite();
    assert_eq!(suite.len(), pinned.len());
    for (m, &(repro, want)) in suite.iter().zip(pinned) {
        assert_eq!(m.repro, repro, "fixture order changed");
        let sss = SssMatrix::from_coo_kind(&m.coo, m.kind, 0.0).unwrap();
        let coloring = level_color_lower(sss.n(), sss.rowptr(), sss.colind());
        assert_eq!(
            coloring.num_groups(),
            want,
            "{repro}: group count drifted from the pinned schedule"
        );
    }
}

/// Degenerate inputs: a diagonal-only matrix needs exactly one group, and
/// the empty matrix colors to zero groups without panicking.
#[test]
fn degenerate_patterns() {
    let mut coo = CooMatrix::new(5, 5);
    for i in 0..5 {
        coo.push(i, i, 2.0);
    }
    let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
    let c = level_color_lower(sss.n(), sss.rowptr(), sss.colind());
    assert_eq!(c.num_groups(), 1, "isolated rows all fit one group");
    assert_coloring_sound(&sss, &c, "diag-only");

    let c0 = level_color_lower(0, &[0], &[]);
    assert_eq!(c0.num_groups(), 0);
    let _ = SymmetryKind::Symmetric; // kind axis exercised by the fixture test
}
