//! Property tests pinning the symmetry-kind algebra across the whole
//! kernel family (tentpole acceptance, ISSUE 6):
//!
//! * **skew**: `xᵀ·(A·x) = 0` exactly in real arithmetic for any
//!   skew-symmetric `A` (the quadratic form of an antisymmetric operator
//!   vanishes). Every kernel built with `SymmetryKind::Skew` — and every
//!   full-storage baseline fed the same expanded matrix — must annihilate
//!   the quadratic form to rounding at every thread count.
//! * **structural**: the paired `upper_values` storage is exact, not an
//!   approximation — reconstructing the full matrix from the half storage
//!   yields the *bit-identical* CSR matrix (same arrays, same SpMV bits)
//!   as building CSR from the original coordinates, and the structural
//!   half-storage kernel agrees with that CSR baseline within the
//!   oracle's tolerance.

use std::sync::Arc;
use symspmv::runtime::ExecutionContext;
use symspmv::sparse::dense::{max_rel_diff, seeded_vector};
use symspmv::sparse::symmetry::SymmetryKind;
use symspmv::sparse::{CsrMatrix, SssMatrix};
use symspmv_harness::kernels::{build_kernel_kind, KernelSpec};

const THREADS: [usize; 4] = [1, 2, 3, 8];

/// Every evaluated kernel configuration: the half-storage family (built
/// per kind) and the full-storage baselines (kind-independent).
fn all_specs() -> Vec<KernelSpec> {
    let mut specs = KernelSpec::related_work_lineup();
    for s in KernelSpec::figure9_lineup()
        .into_iter()
        .chain(KernelSpec::figure11_lineup())
    {
        if !specs.contains(&s) {
            specs.push(s);
        }
    }
    specs
}

#[test]
fn every_skew_kernel_annihilates_the_quadratic_form_at_every_thread_count() {
    let coo = symspmv::sparse::gen::skew_convection(512, 19, 7.0, 41);
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 77);
    let mut executed = 0usize;

    for &p in &THREADS {
        let ctx: Arc<ExecutionContext> = ExecutionContext::new(p);
        for spec in all_specs() {
            let mut k = build_kernel_kind(spec, &coo, SymmetryKind::Skew, &ctx)
                .unwrap_or_else(|e| panic!("{} rejected the skew matrix: {e}", spec.name()));
            let mut y = vec![f64::NAN; n];
            k.spmv(&x, &mut y);
            // Scale-relative bound: |xᵀAx| against Σ|x_i·(Ax)_i|, the
            // magnitude the cancellation happens over.
            let quad: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let scale: f64 = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum();
            assert!(
                quad.abs() <= 1e-12 * scale.max(1.0),
                "{} at p={p}: xᵀAx = {quad:e} (scale {scale:e}) — skew mirror broken",
                spec.name()
            );
            executed += 1;
        }
    }
    assert_eq!(executed, THREADS.len() * all_specs().len());
}

#[test]
fn structural_reconstruction_is_bit_identical_to_csr() {
    let coo = symspmv::sparse::gen::structural_random(400, 7.0, 0.5, 12, 53);
    let n = coo.nrows() as usize;

    let sss = SssMatrix::from_coo_kind(&coo, SymmetryKind::Structural, 0.0).unwrap();
    let csr_direct = CsrMatrix::from_coo(&coo);
    let csr_rebuilt = sss.to_full_csr();

    // The paired storage carries the exact upper-triangle values: the
    // reconstructed CSR is the same matrix array-for-array.
    assert_eq!(csr_direct.rowptr(), csr_rebuilt.rowptr());
    assert_eq!(csr_direct.colind(), csr_rebuilt.colind());
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(csr_direct.values()), bits(csr_rebuilt.values()));

    // Hence the serial CSR SpMV is bit-identical between the two.
    let x = seeded_vector(n, 19);
    let (mut y_direct, mut y_rebuilt) = (vec![0.0; n], vec![0.0; n]);
    csr_direct.spmv(&x, &mut y_direct);
    csr_rebuilt.spmv(&x, &mut y_rebuilt);
    assert_eq!(bits(&y_direct), bits(&y_rebuilt));

    // And the structural half-storage kernel computes the same operator
    // (different accumulation order → oracle tolerance, not bits).
    let mut y_sss = vec![0.0; n];
    sss.spmv(&x, &mut y_sss);
    let d = max_rel_diff(&y_sss, &y_direct);
    assert!(
        d <= 1e-12,
        "structural SSS drifted {d:e} from the CSR baseline"
    );
}
