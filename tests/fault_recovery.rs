//! The ISSUE acceptance test for the fault-injection runtime: a worker
//! panic deliberately injected into the *reduction* phase of a symmetric
//! SpMV must be caught and surfaced as [`SymSpmvError::WorkerPanicked`],
//! and a follow-up SpMV on the very same [`ExecutionContext`] must produce
//! results bit-identical to a fresh context — the dying worker leaves no
//! trace in the pool, the arena, or the output.
//!
//! The fault hooks are compiled in via this package's dev-dependency on
//! `symspmv-runtime` with the `fault-injection` feature.

use symspmv::core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv, SymSpmvError};
use symspmv::runtime::ExecutionContext;
use symspmv::sparse::dense::seeded_vector;
use symspmv::sparse::CooMatrix;

fn test_matrix() -> CooMatrix {
    symspmv::sparse::gen::banded_random(600, 25, 9.0, 23)
}

/// One spmv on a warmed-up context spans exactly two pool rounds: the
/// multiply (`ctx.run`) and the reduction (`strategy.reduce` issues one
/// `pool.run`). Arming a fault `in_rounds = 1` from "now" therefore lands
/// it in the reduction phase of the next spmv.
const REDUCTION_ROUND_OFFSET: usize = 1;

#[test]
fn reduction_phase_panic_is_caught_and_context_recovers_bit_identical() {
    let coo = test_matrix();
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 11);

    for method in [
        ReductionMethod::Naive,
        ReductionMethod::EffectiveRanges,
        ReductionMethod::Indexing,
    ] {
        let ctx = ExecutionContext::new(4);
        let mut eng = SymSpmv::try_from_coo(&coo, &ctx, method, SymFormat::Sss)
            .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));

        // Warm up: the arena now holds the local-vector buffer, so the next
        // spmv issues no extra first-touch rounds that would shift the
        // armed round.
        let mut y_warm = vec![0.0; n];
        eng.try_spmv(&x, &mut y_warm).expect("warm-up spmv");

        // Kill worker 2 in the reduction phase of the next spmv.
        ctx.fault_plan().arm_worker_panic(2, REDUCTION_ROUND_OFFSET);
        let mut y_doomed = vec![0.0; n];
        let err = match eng.try_spmv(&x, &mut y_doomed) {
            Err(e) => e,
            Ok(()) => panic!("{method:?}: armed reduction panic did not surface"),
        };
        match &err {
            SymSpmvError::WorkerPanicked { tid, message } => {
                assert_eq!(*tid, 2, "{method:?}: wrong worker blamed: {err}");
                assert!(
                    message.contains("injected fault"),
                    "{method:?}: panic payload lost: {message}"
                );
            }
            other => panic!("{method:?}: expected WorkerPanicked, got {other:?}"),
        }
        assert_eq!(
            ctx.fault_plan().fired(),
            1,
            "{method:?}: the armed fault must fire exactly once"
        );

        // `try_spmv` consumed the pool's panic record to build the error,
        // so no stale record lingers to be misattributed to a later call.
        assert_eq!(ctx.take_last_panic(), None);

        // The arena healed: every free buffer is back to all-zeros, so the
        // next lease cannot observe the half-reduced garbage.
        assert!(
            ctx.arena_all_free_zero(),
            "{method:?}: arena dirty after a panicked reduction"
        );

        // Recovery: the SAME engine on the SAME context must now agree
        // bit-for-bit with a fresh context running the same kernel.
        let mut y_recovered = vec![0.0; n];
        eng.try_spmv(&x, &mut y_recovered)
            .unwrap_or_else(|e| panic!("{method:?}: context not reusable: {e}"));

        let fresh_ctx = ExecutionContext::new(4);
        let mut fresh_eng = SymSpmv::try_from_coo(&coo, &fresh_ctx, method, SymFormat::Sss)
            .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
        let mut y_fresh = vec![0.0; n];
        fresh_eng.try_spmv(&x, &mut y_fresh).expect("fresh spmv");

        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&y_recovered),
            bits(&y_fresh),
            "{method:?}: recovered context diverges from a fresh one"
        );
        // And from its own pre-fault answer.
        assert_eq!(bits(&y_recovered), bits(&y_warm));
    }
}

/// The batched path under the same injection: a worker panic in the
/// reduction phase of an SpMM must surface as `WorkerPanicked`, the leased
/// block buffers (k lanes wide) must be scrubbed back to the arena
/// mid-unwind, and a follow-up SpMM on the same context must be
/// bit-identical to a fresh one.
#[test]
fn reduction_phase_panic_during_spmm_is_caught_and_context_recovers() {
    use symspmv::core::ParallelSpmmExt;
    use symspmv::sparse::VectorBlock;

    let coo = test_matrix();
    let n = coo.nrows() as usize;
    let lanes = 4;
    let x = VectorBlock::seeded(n, lanes, 11);

    for method in [
        ReductionMethod::Naive,
        ReductionMethod::EffectiveRanges,
        ReductionMethod::Indexing,
    ] {
        let ctx = ExecutionContext::new(4);
        let mut eng = SymSpmv::try_from_coo(&coo, &ctx, method, SymFormat::Sss)
            .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));

        // Warm up so the k-lane-wide local buffer is already in the arena
        // and the armed round lands in the reduction, not a first-touch.
        let mut y_warm = VectorBlock::zeros(n, lanes);
        eng.try_spmm(&x, &mut y_warm).expect("warm-up spmm");

        ctx.fault_plan().arm_worker_panic(2, REDUCTION_ROUND_OFFSET);
        let mut y_doomed = VectorBlock::zeros(n, lanes);
        match eng.try_spmm(&x, &mut y_doomed) {
            Err(SymSpmvError::WorkerPanicked { tid, message }) => {
                assert_eq!(tid, 2, "{method:?}: wrong worker blamed");
                assert!(
                    message.contains("injected fault"),
                    "{method:?}: panic payload lost: {message}"
                );
            }
            Err(other) => panic!("{method:?}: expected WorkerPanicked, got {other:?}"),
            Ok(()) => panic!("{method:?}: armed reduction panic did not surface"),
        }
        assert_eq!(ctx.fault_plan().fired(), 1);
        assert_eq!(ctx.take_last_panic(), None);

        // The lane-wide leases returned mid-unwind left the arena whole:
        // every free buffer is back to all-zeros.
        assert!(
            ctx.arena_all_free_zero(),
            "{method:?}: arena dirty after a panicked block reduction"
        );

        // Recovery: same engine, same context, bit-identical to fresh.
        let mut y_recovered = VectorBlock::zeros(n, lanes);
        eng.try_spmm(&x, &mut y_recovered)
            .unwrap_or_else(|e| panic!("{method:?}: context not reusable: {e}"));

        let fresh_ctx = ExecutionContext::new(4);
        let mut fresh_eng = SymSpmv::try_from_coo(&coo, &fresh_ctx, method, SymFormat::Sss)
            .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
        let mut y_fresh = VectorBlock::zeros(n, lanes);
        fresh_eng.try_spmm(&x, &mut y_fresh).expect("fresh spmm");

        let bits = |v: &VectorBlock| v.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&y_recovered),
            bits(&y_fresh),
            "{method:?}: recovered context diverges from a fresh one on the block path"
        );
        assert_eq!(bits(&y_recovered), bits(&y_warm));
    }
}

/// The recovery contract is kind-independent: a reduction-phase worker
/// panic on a skew or structurally symmetric engine surfaces as
/// `WorkerPanicked` and the same context afterwards computes results
/// bit-identical to a fresh one, exactly as the symmetric rows above.
#[test]
fn reduction_phase_panic_recovery_holds_per_kind() {
    use symspmv::sparse::symmetry::SymmetryKind;

    let cases = [
        (
            SymmetryKind::Skew,
            symspmv::sparse::gen::skew_convection(600, 25, 9.0, 23),
        ),
        (
            SymmetryKind::Structural,
            symspmv::sparse::gen::structural_random(600, 9.0, 0.5, 25, 23),
        ),
    ];
    for (kind, coo) in cases {
        let n = coo.nrows() as usize;
        let x = seeded_vector(n, 11);
        let ctx = ExecutionContext::new(4);
        let mut eng =
            SymSpmv::try_from_coo_kind(&coo, kind, &ctx, ReductionMethod::Indexing, SymFormat::Sss)
                .unwrap_or_else(|e| panic!("{kind:?}: valid matrix rejected: {e}"));

        let mut y_warm = vec![0.0; n];
        eng.try_spmv(&x, &mut y_warm).expect("warm-up spmv");

        ctx.fault_plan().arm_worker_panic(2, REDUCTION_ROUND_OFFSET);
        let mut y_doomed = vec![0.0; n];
        match eng.try_spmv(&x, &mut y_doomed) {
            Err(SymSpmvError::WorkerPanicked { tid, .. }) => {
                assert_eq!(tid, 2, "{kind:?}: wrong worker blamed");
            }
            Err(other) => panic!("{kind:?}: expected WorkerPanicked, got {other:?}"),
            Ok(()) => panic!("{kind:?}: armed reduction panic did not surface"),
        }
        assert_eq!(ctx.fault_plan().fired(), 1);
        assert_eq!(ctx.take_last_panic(), None);
        assert!(
            ctx.arena_all_free_zero(),
            "{kind:?}: arena dirty after a panicked reduction"
        );

        let mut y_recovered = vec![0.0; n];
        eng.try_spmv(&x, &mut y_recovered)
            .unwrap_or_else(|e| panic!("{kind:?}: context not reusable: {e}"));

        let fresh_ctx = ExecutionContext::new(4);
        let mut fresh_eng = SymSpmv::try_from_coo_kind(
            &coo,
            kind,
            &fresh_ctx,
            ReductionMethod::Indexing,
            SymFormat::Sss,
        )
        .unwrap_or_else(|e| panic!("{kind:?}: valid matrix rejected: {e}"));
        let mut y_fresh = vec![0.0; n];
        fresh_eng.try_spmv(&x, &mut y_fresh).expect("fresh spmv");

        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&y_recovered),
            bits(&y_fresh),
            "{kind:?}: recovered context diverges from a fresh one"
        );
        assert_eq!(bits(&y_recovered), bits(&y_warm));
    }
}

/// The supervision satellite: a request cancelled *mid-run* — the token
/// trips at the checkpoint between the multiply and the reduction — must
/// come back as the typed [`SymSpmvError::Cancelled`], leave the arena
/// all-free-zero, and the very same context must then serve a bit-identical
/// SpMV. Swept over every thread count and every symmetry kind, because
/// both the checkpoint cadence (reduction rounds exist only at `p > 1`)
/// and the mirror rule vary across that product.
#[test]
fn cancelled_mid_reduction_returns_typed_error_and_context_recovers() {
    use symspmv::runtime::{CancelToken, Supervision};
    use symspmv::sparse::symmetry::SymmetryKind;

    let cases = [
        (SymmetryKind::Symmetric, test_matrix()),
        (
            SymmetryKind::Skew,
            symspmv::sparse::gen::skew_convection(600, 25, 9.0, 23),
        ),
        (
            SymmetryKind::Structural,
            symspmv::sparse::gen::structural_random(600, 9.0, 0.5, 25, 23),
        ),
    ];
    for (kind, coo) in &cases {
        let n = coo.nrows() as usize;
        let x = seeded_vector(n, 11);
        for p in [1usize, 2, 3, 4, 8] {
            let ctx = ExecutionContext::new(p);
            let mut eng = SymSpmv::try_from_coo_kind(
                coo,
                *kind,
                &ctx,
                ReductionMethod::Indexing,
                SymFormat::Sss,
            )
            .unwrap_or_else(|e| panic!("{kind:?}: valid matrix rejected: {e}"));

            let mut y_warm = vec![0.0; n];
            eng.try_spmv(&x, &mut y_warm).expect("warm-up spmv");

            // At p > 1 a warm spmv polls two checkpoints (multiply, then
            // reduction); tripping the token after one poll cancels exactly
            // between the phases. At p = 1 there is no reduction round, so
            // the very next checkpoint is the only mid-run point.
            let token = CancelToken::new();
            token.cancel_after_checkpoints(if p > 1 { 1 } else { 0 });
            let mut y_doomed = vec![0.0; n];
            let res = {
                let _guard = ctx.supervise(Supervision::with_cancel(token.clone()));
                eng.try_spmv(&x, &mut y_doomed)
            };
            match res {
                Err(SymSpmvError::Cancelled) => {}
                other => panic!("{kind:?} p={p}: expected Cancelled, got {other:?}"),
            }
            assert!(token.is_cancelled());
            // The interrupt is not a worker death: nothing to misattribute,
            // nothing left dirty in the arena.
            assert_eq!(ctx.take_last_panic(), None, "{kind:?} p={p}");
            assert!(
                ctx.arena_all_free_zero(),
                "{kind:?} p={p}: arena dirty after a cancelled run"
            );

            // The supervision guard is gone; the same engine on the same
            // context must agree bit-for-bit with its pre-cancel answer.
            let mut y_recovered = vec![0.0; n];
            eng.try_spmv(&x, &mut y_recovered)
                .unwrap_or_else(|e| panic!("{kind:?} p={p}: context not reusable: {e}"));
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&y_recovered),
                bits(&y_warm),
                "{kind:?} p={p}: recovered context diverges after cancellation"
            );
        }
    }
}

/// A deadline that is already expired when the request starts must be
/// detected at the first checkpoint — before any worker round runs — and
/// surface as the typed `DeadlineExceeded` with `wedged: false` (no round
/// overran; the budget was simply gone). The context stays serviceable.
#[test]
fn expired_deadline_interrupts_at_the_first_checkpoint() {
    use std::time::Duration;
    use symspmv::runtime::Supervision;

    let coo = test_matrix();
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 11);
    let ctx = ExecutionContext::new(4);
    let mut eng = SymSpmv::try_from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss)
        .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));

    let mut y_warm = vec![0.0; n];
    eng.try_spmv(&x, &mut y_warm).expect("warm-up spmv");

    let mut y_doomed = vec![0.0; n];
    let res = {
        let _guard = ctx.supervise(Supervision::deadline_within(Duration::ZERO));
        eng.try_spmv(&x, &mut y_doomed)
    };
    match res {
        Err(SymSpmvError::DeadlineExceeded { wedged: false }) => {}
        other => panic!("expected DeadlineExceeded {{ wedged: false }}, got {other:?}"),
    }
    assert_eq!(ctx.take_last_panic(), None);
    assert!(ctx.arena_all_free_zero());

    let mut y_recovered = vec![0.0; n];
    eng.try_spmv(&x, &mut y_recovered)
        .unwrap_or_else(|e| panic!("context not reusable after deadline: {e}"));
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&y_recovered), bits(&y_warm));
}

/// The scheduled (race) strategy has no reduction phase to kill, so the
/// fault is aimed mid-*schedule* instead: worker 2 dies inside a color
/// group's pool round while every thread is writing `y` directly. The
/// typed error, the clean arena and the bit-identical recovery must hold
/// exactly as they do for the reduction-phase kills above.
#[test]
fn race_group_round_panic_is_caught_and_context_recovers_bit_identical() {
    let coo = test_matrix();
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 11);

    let ctx = ExecutionContext::new(4);
    let mut eng = SymSpmv::try_from_coo(&coo, &ctx, ReductionMethod::Race, SymFormat::Sss)
        .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));

    let mut y_warm = vec![0.0; n];
    eng.try_spmv(&x, &mut y_warm).expect("warm-up spmv");

    // A race spmv dispatches round 0 (the diagonal pre-pass) and then one
    // round per color group; arming two rounds ahead lands the panic
    // inside the second group round — mid-schedule, with part of `y`
    // already scattered.
    ctx.fault_plan().arm_worker_panic(2, 2);
    let mut y_doomed = vec![0.0; n];
    match eng.try_spmv(&x, &mut y_doomed) {
        Err(SymSpmvError::WorkerPanicked { tid, message }) => {
            assert_eq!(tid, 2, "wrong worker blamed");
            assert!(
                message.contains("injected fault"),
                "panic payload lost: {message}"
            );
        }
        Err(other) => panic!("expected WorkerPanicked, got {other:?}"),
        Ok(()) => panic!("armed mid-group panic did not surface"),
    }
    assert_eq!(ctx.fault_plan().fired(), 1);
    assert_eq!(ctx.take_last_panic(), None);

    // The race kernel leases nothing, but the invariant is global: the
    // arena must still be all-free-zero after the unwind.
    assert!(
        ctx.arena_all_free_zero(),
        "arena dirty after a panicked group round"
    );

    // Recovery: the fixed group order makes the race kernel
    // deterministic, so the same engine on the same context must agree
    // bit-for-bit with a fresh context — and with its pre-fault answer.
    let mut y_recovered = vec![0.0; n];
    eng.try_spmv(&x, &mut y_recovered)
        .unwrap_or_else(|e| panic!("context not reusable: {e}"));

    let fresh_ctx = ExecutionContext::new(4);
    let mut fresh_eng =
        SymSpmv::try_from_coo(&coo, &fresh_ctx, ReductionMethod::Race, SymFormat::Sss)
            .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
    let mut y_fresh = vec![0.0; n];
    fresh_eng.try_spmv(&x, &mut y_fresh).expect("fresh spmv");

    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&y_recovered),
        bits(&y_fresh),
        "recovered context diverges from a fresh one"
    );
    assert_eq!(bits(&y_recovered), bits(&y_warm));
}

#[test]
fn panic_in_one_kernel_does_not_poison_siblings_on_the_shared_context() {
    // Two kernels share one context; a worker death inside the first must
    // leave the second computing bit-identical results.
    let coo = test_matrix();
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 29);

    let ctx = ExecutionContext::new(3);
    let mut victim = SymSpmv::try_from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss)
        .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
    let mut sibling =
        SymSpmv::try_from_coo(&coo, &ctx, ReductionMethod::EffectiveRanges, SymFormat::Sss)
            .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));

    let mut y_before = vec![0.0; n];
    sibling.try_spmv(&x, &mut y_before).expect("baseline spmv");

    let mut y = vec![0.0; n];
    victim.try_spmv(&x, &mut y).expect("warm-up spmv");
    ctx.fault_plan().arm_worker_panic(1, REDUCTION_ROUND_OFFSET);
    assert!(
        matches!(
            victim.try_spmv(&x, &mut y),
            Err(SymSpmvError::WorkerPanicked { tid: 1, .. })
        ),
        "armed reduction panic did not surface as WorkerPanicked"
    );
    let _ = ctx.take_last_panic();

    let mut y_after = vec![0.0; n];
    sibling.try_spmv(&x, &mut y_after).expect("sibling spmv");
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&y_after),
        bits(&y_before),
        "sibling kernel corrupted by another kernel's worker death"
    );
    assert!(ctx.arena_all_free_zero());
}
