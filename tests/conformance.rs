//! Differential conformance oracle (see `crates/harness/src/conformance.rs`
//! for the shared helpers and the class definitions).
//!
//! Sweeps the **full** cross product
//! `kind × format × nthreads × lanes × suite matrix` — the suite spans
//! `{symmetric, skew, structural}` — and compares every combination
//! against the per-kind serial SSS reference, per lane:
//!
//! * bitwise for the combinations proven to replay the reference's exact
//!   op order (`sss-eff`/`sss-idx` at one thread);
//! * within the documented `REL_TOL` everywhere else.
//!
//! A failing combination panics with a one-line minimal reproducer. A
//! final counter assertion pins the number of executed combinations to the
//! full cross product — the matrix cannot silently shrink (a skipped
//! combination is a failure, not a gap).

use symspmv_harness::conformance::{
    block_specs, build_block_kernel_kind, check_lane, full_suite, is_bitwise_class,
    is_nondeterministic, repro_line, serial_reference_kind, ORACLE_LANES, ORACLE_THREADS, REL_TOL,
};
use symspmv_runtime::ExecutionContext;
use symspmv_sparse::dense::max_rel_diff;
use symspmv_sparse::VectorBlock;

const VEC_SEED: u64 = 1234;

/// The kind axis cannot silently shrink: the full suite covers every
/// symmetry kind, and its size is pinned so a dropped matrix fails loudly
/// (the per-test counter pins then scale from it).
#[test]
fn suite_spans_every_kind() {
    use symspmv_sparse::symmetry::SymmetryKind;
    let kinds: Vec<_> = full_suite().iter().map(|m| m.kind).collect();
    for k in SymmetryKind::ALL {
        assert!(kinds.contains(&k), "no suite matrix with kind {}", k.tag());
    }
    assert_eq!(full_suite().len(), 5);
}

/// The format axis cannot silently shrink either: its size is pinned, and
/// the reduction-free scheduled strategy must be on it (the per-test
/// counters scale from this length).
#[test]
fn format_axis_includes_scheduled_strategy() {
    let names: Vec<_> = block_specs().iter().map(|s| s.name()).collect();
    assert!(
        names.contains(&"sss-race"),
        "the sss-race axis is missing from the oracle"
    );
    assert_eq!(block_specs().len(), 10, "format axis silently shrank");
}

/// SpMV: every format × nthreads × matrix agrees with the serial SSS
/// reference on a seeded input vector.
#[test]
fn spmv_conforms_to_serial_reference() {
    let matrices = full_suite();
    let specs = block_specs();
    let mut executed = 0usize;
    for m in &matrices {
        let n = m.coo.nrows() as usize;
        let x = symspmv_sparse::dense::seeded_vector(n, VEC_SEED);
        let want = serial_reference_kind(&m.coo, m.kind, &x);
        for &p in &ORACLE_THREADS {
            let ctx = ExecutionContext::new(p);
            for &spec in &specs {
                let mut k = build_block_kernel_kind(spec, &m.coo, m.kind, &ctx)
                    .expect("suite matrices build in every format")
                    .expect("block_specs() only lists block-capable formats");
                let mut y = vec![f64::NAN; n];
                k.spmv(&x, &mut y);
                if let Err(why) = check_lane(&y, &want, is_bitwise_class(spec, p)) {
                    panic!(
                        "spmv conformance failure: {why}\n  {}",
                        repro_line(m, spec, p, 1, VEC_SEED)
                    );
                }
                executed += 1;
            }
        }
    }
    assert_eq!(
        executed,
        full_suite().len() * block_specs().len() * ORACLE_THREADS.len(),
        "conformance matrix silently shrank"
    );
}

/// SpMM: every format × nthreads × lanes × matrix agrees with the serial
/// SSS reference on every lane of a seeded block.
#[test]
fn spmm_conforms_to_serial_reference() {
    let matrices = full_suite();
    let specs = block_specs();
    let mut executed = 0usize;
    for m in &matrices {
        let n = m.coo.nrows() as usize;
        for &p in &ORACLE_THREADS {
            let ctx = ExecutionContext::new(p);
            for &spec in &specs {
                let mut k = build_block_kernel_kind(spec, &m.coo, m.kind, &ctx)
                    .expect("suite matrices build in every format")
                    .expect("block_specs() only lists block-capable formats");
                for &lanes in &ORACLE_LANES {
                    let x = VectorBlock::seeded(n, lanes, VEC_SEED);
                    let mut y = VectorBlock::zeros(n, lanes);
                    k.spmm(&x, &mut y);
                    for j in 0..lanes {
                        let want = serial_reference_kind(&m.coo, m.kind, &x.lane(j));
                        if let Err(why) = check_lane(&y.lane(j), &want, is_bitwise_class(spec, p)) {
                            panic!(
                                "spmm conformance failure on lane {j}: {why}\n  {}",
                                repro_line(m, spec, p, lanes, VEC_SEED)
                            );
                        }
                    }
                    executed += 1;
                }
            }
        }
    }
    assert_eq!(
        executed,
        full_suite().len() * block_specs().len() * ORACLE_THREADS.len() * ORACLE_LANES.len(),
        "conformance matrix silently shrank"
    );
}

/// Property: `spmm(k)` is bit-identical to `k` independent `spmv` calls on
/// the same context, for every block-capable format, lane by lane. The
/// only exception is CSB-Sym beyond one thread, whose atomic accumulation
/// makes even repeated `spmv` calls scheduling-dependent — there the lanes
/// must still agree within `REL_TOL`.
#[test]
fn spmm_is_bitwise_k_spmv_calls() {
    let matrices = full_suite();
    let specs = block_specs();
    let mut executed = 0usize;
    for m in &matrices {
        let n = m.coo.nrows() as usize;
        for &p in &ORACLE_THREADS {
            let ctx = ExecutionContext::new(p);
            for &spec in &specs {
                let mut k = build_block_kernel_kind(spec, &m.coo, m.kind, &ctx)
                    .expect("suite matrices build in every format")
                    .expect("block_specs() only lists block-capable formats");
                for &lanes in &ORACLE_LANES {
                    let x = VectorBlock::seeded(n, lanes, VEC_SEED);
                    let mut y = VectorBlock::zeros(n, lanes);
                    k.spmm(&x, &mut y);
                    for j in 0..lanes {
                        let mut yj = vec![f64::NAN; n];
                        k.spmv(&x.lane(j), &mut yj);
                        let got = y.lane(j);
                        if is_nondeterministic(spec, p) {
                            let d = max_rel_diff(&got, &yj);
                            assert!(
                                d <= REL_TOL,
                                "lane {j} drifted {d:e} beyond {REL_TOL:e}\n  {}",
                                repro_line(m, spec, p, lanes, VEC_SEED)
                            );
                        } else {
                            assert_eq!(
                                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                                yj.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                                "spmm lane {j} is not bit-identical to spmv\n  {}",
                                repro_line(m, spec, p, lanes, VEC_SEED)
                            );
                        }
                    }
                    executed += 1;
                }
            }
        }
    }
    assert_eq!(
        executed,
        full_suite().len() * block_specs().len() * ORACLE_THREADS.len() * ORACLE_LANES.len(),
        "property matrix silently shrank"
    );
}
