//! Randomized invariants over the whole stack.
//!
//! Formerly proptest-based; now driven by the workspace's own seeded
//! [`StdRng`] so the property coverage survives without external crates
//! and every case is exactly reproducible from its loop index.

use symspmv::core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv::csx::detect::DetectConfig;
use symspmv::csx::CsxMatrix;
use symspmv::reorder::rcm::rcm_permutation;
use symspmv::runtime::ExecutionContext;
use symspmv::sparse::rng::StdRng;
use symspmv::sparse::{CooMatrix, CsrMatrix, Permutation, SssMatrix};

const CASES: u64 = 48;

/// A random symmetric SPD matrix: diagonally dominated full symmetrization
/// of a random strictly-lower pattern.
fn sym_matrix(rng: &mut StdRng) -> CooMatrix {
    let n = rng.random_range(4u32..60);
    let mut lower = CooMatrix::new(n, n);
    for _ in 0..rng.random_range(0usize..160) {
        let r = rng.random_range(0..n);
        let c = rng.random_range(0..n);
        if c < r {
            lower.push(r, c, rng.random_range(-1.0..-0.01));
        }
    }
    lower.canonicalize();
    symspmv::sparse::gen::spd_from_lower(&lower, 1.0)
}

fn vec_for(n: usize, seed: u64) -> Vec<f64> {
    symspmv::sparse::dense::seeded_vector(n, seed)
}

#[test]
fn all_kernels_agree_with_reference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA000 + case);
        let coo = sym_matrix(&mut rng);
        let p = rng.random_range(1usize..5);
        let ctx = ExecutionContext::new(p);
        let n = coo.nrows() as usize;
        let x = vec_for(n, 11);
        let mut y_ref = vec![0.0; n];
        coo.spmv_reference(&x, &mut y_ref);

        let cfg = DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        };
        for method in [
            ReductionMethod::Naive,
            ReductionMethod::EffectiveRanges,
            ReductionMethod::Indexing,
        ] {
            let mut formats = vec![SymFormat::Sss, SymFormat::CsxSym(cfg.clone())];
            if method != ReductionMethod::Naive {
                formats.push(SymFormat::Hybrid {
                    csx: cfg.clone(),
                    min_coverage: 0.5,
                });
            }
            for format in formats {
                let mut k = SymSpmv::from_coo(&coo, &ctx, method, format).unwrap();
                let mut y = vec![f64::NAN; n];
                k.spmv(&x, &mut y);
                for (a, b) in y.iter().zip(&y_ref) {
                    assert!(
                        (a - b).abs() < 1e-10,
                        "case {case}, {}: {a} vs {b}",
                        k.name()
                    );
                }
            }
        }
    }
}

#[test]
fn csr_sss_csx_round_trips() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB000 + case);
        let coo = sym_matrix(&mut rng);
        let mut canon = coo.clone();
        canon.canonicalize();
        // COO -> CSR -> COO
        assert_eq!(CsrMatrix::from_coo(&coo).to_coo(), canon, "case {case}");
        // COO -> SSS -> COO
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        assert_eq!(sss.to_full_coo(), canon, "case {case}");
        // COO -> CSX -> COO
        let cfg = DetectConfig {
            min_coverage: 0.0,
            ..DetectConfig::default()
        };
        assert_eq!(
            CsxMatrix::from_coo(&coo, &cfg).to_coo(),
            canon,
            "case {case}"
        );
    }
}

#[test]
fn rcm_is_a_bijection_and_preserves_spmv() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC000 + case);
        let coo = sym_matrix(&mut rng);
        let n = coo.nrows();
        let p = rcm_permutation(&coo).unwrap();
        assert_eq!(
            p.then(&p.inverse()),
            Permutation::identity(n),
            "case {case}"
        );

        let reordered = p.apply_symmetric(&coo).unwrap();
        let x = vec_for(n as usize, 3);
        let mut ax = vec![0.0; n as usize];
        let mut c = coo.clone();
        c.canonicalize();
        c.spmv_reference(&x, &mut ax);
        let px = p.apply_vec(&x);
        let mut papx = vec![0.0; n as usize];
        reordered.spmv_reference(&px, &mut papx);
        let pax = p.apply_vec(&ax);
        for (a, b) in papx.iter().zip(&pax) {
            assert!((a - b).abs() < 1e-10, "case {case}");
        }
    }
}

#[test]
fn conflict_index_is_exact() {
    // The symbolic index must contain exactly the (vid, idx) pairs the
    // multiply phase writes to local vectors.
    use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights};
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD000 + case);
        let coo = sym_matrix(&mut rng);
        let p = rng.random_range(2usize..6);
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), p);
        let ci = symspmv::core::symbolic::analyze(&sss, &parts);

        let mut expected = std::collections::BTreeSet::new();
        for (i, part) in parts.iter().enumerate() {
            for r in part.start..part.end {
                let (cols, _) = sss.row(r);
                for &c in cols {
                    if c < part.start {
                        expected.insert((i as u32, c));
                    }
                }
            }
        }
        let got: std::collections::BTreeSet<(u32, u32)> =
            ci.entries.iter().map(|e| (e.vid, e.idx)).collect();
        // Entries are keyed (idx, vid) but as a set they must match.
        assert_eq!(got, expected, "case {case}");
    }
}

#[test]
fn varint_round_trip() {
    use symspmv::csx::varint::{read_varint, write_varint};
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE000 + case);
        let vals: Vec<u64> = (0..rng.random_range(0usize..40))
            .map(|_| {
                // Mix full-range and small values to hit every width class.
                let raw = rng.random::<u64>();
                raw >> (rng.random_range(0u32..64))
            })
            .collect();
        let mut buf = Vec::new();
        for &v in &vals {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(read_varint(&buf, &mut pos), v, "case {case}");
        }
        assert_eq!(pos, buf.len(), "case {case}");
    }
}
