//! Property-based invariants over the whole stack (proptest).

use proptest::prelude::*;
use symspmv::core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv::csx::detect::DetectConfig;
use symspmv::csx::CsxMatrix;
use symspmv::reorder::rcm::rcm_permutation;
use symspmv::sparse::{CooMatrix, CsrMatrix, Permutation, SssMatrix};

/// Strategy: a random symmetric SPD matrix given as (n, lower-triplets).
fn sym_matrix() -> impl Strategy<Value = CooMatrix> {
    (4u32..60, proptest::collection::vec((0u32..60, 0u32..60, -1.0f64..-0.01), 0..160)).prop_map(
        |(n, trips)| {
            let mut lower = CooMatrix::new(n, n);
            for (r, c, v) in trips {
                let (r, c) = (r % n, c % n);
                if c < r {
                    lower.push(r, c, v);
                }
            }
            lower.canonicalize();
            symspmv::sparse::gen::spd_from_lower(&lower, 1.0)
        },
    )
}

fn vec_for(n: usize, seed: u64) -> Vec<f64> {
    symspmv::sparse::dense::seeded_vector(n, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_kernels_agree_with_reference(coo in sym_matrix(), p in 1usize..5) {
        let n = coo.nrows() as usize;
        let x = vec_for(n, 11);
        let mut y_ref = vec![0.0; n];
        coo.spmv_reference(&x, &mut y_ref);

        let cfg = DetectConfig { min_coverage: 0.0, ..DetectConfig::default() };
        for method in [ReductionMethod::Naive, ReductionMethod::EffectiveRanges, ReductionMethod::Indexing] {
            let mut formats = vec![SymFormat::Sss, SymFormat::CsxSym(cfg.clone())];
            if method != ReductionMethod::Naive {
                formats.push(SymFormat::Hybrid { csx: cfg.clone(), min_coverage: 0.5 });
            }
            for format in formats {
                let mut k = SymSpmv::from_coo(&coo, p, method, format).unwrap();
                let mut y = vec![f64::NAN; n];
                k.spmv(&x, &mut y);
                for (a, b) in y.iter().zip(&y_ref) {
                    prop_assert!((a - b).abs() < 1e-10, "{}: {a} vs {b}", k.name());
                }
            }
        }
    }

    #[test]
    fn csr_sss_csx_round_trips(coo in sym_matrix()) {
        let mut canon = coo.clone();
        canon.canonicalize();
        // COO -> CSR -> COO
        prop_assert_eq!(CsrMatrix::from_coo(&coo).to_coo(), canon.clone());
        // COO -> SSS -> COO
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        prop_assert_eq!(sss.to_full_coo(), canon.clone());
        // COO -> CSX -> COO
        let cfg = DetectConfig { min_coverage: 0.0, ..DetectConfig::default() };
        prop_assert_eq!(CsxMatrix::from_coo(&coo, &cfg).to_coo(), canon);
    }

    #[test]
    fn rcm_is_a_bijection_and_preserves_spmv(coo in sym_matrix()) {
        let n = coo.nrows();
        let p = rcm_permutation(&coo).unwrap();
        prop_assert_eq!(p.then(&p.inverse()), Permutation::identity(n));

        let reordered = p.apply_symmetric(&coo).unwrap();
        let x = vec_for(n as usize, 3);
        let mut ax = vec![0.0; n as usize];
        let mut c = coo.clone();
        c.canonicalize();
        c.spmv_reference(&x, &mut ax);
        let px = p.apply_vec(&x);
        let mut papx = vec![0.0; n as usize];
        reordered.spmv_reference(&px, &mut papx);
        let pax = p.apply_vec(&ax);
        for (a, b) in papx.iter().zip(&pax) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn conflict_index_is_exact(coo in sym_matrix(), p in 2usize..6) {
        // The symbolic index must contain exactly the (vid, idx) pairs the
        // multiply phase writes to local vectors.
        use symspmv_runtime::{balanced_ranges, partition::symmetric_row_weights};
        let sss = SssMatrix::from_coo(&coo, 0.0).unwrap();
        let parts = balanced_ranges(&symmetric_row_weights(sss.rowptr()), p);
        let ci = symspmv::core::symbolic::analyze(&sss, &parts);

        let mut expected = std::collections::BTreeSet::new();
        for (i, part) in parts.iter().enumerate() {
            for r in part.start..part.end {
                let (cols, _) = sss.row(r);
                for &c in cols {
                    if c < part.start {
                        expected.insert((i as u32, c));
                    }
                }
            }
        }
        let got: std::collections::BTreeSet<(u32, u32)> =
            ci.entries.iter().map(|e| (e.vid, e.idx)).collect();
        // Entries are keyed (idx, vid) but as a set they must match.
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn varint_round_trip(vals in proptest::collection::vec(any::<u64>(), 0..40)) {
        use symspmv::csx::varint::{read_varint, write_varint};
        let mut buf = Vec::new();
        for &v in &vals {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            prop_assert_eq!(read_varint(&buf, &mut pos), v);
        }
        prop_assert_eq!(pos, buf.len());
    }
}
