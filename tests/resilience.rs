//! End-to-end resilience: the supervisor, retry policy, serial fallback
//! and resilient solver riding through injected faults on one shared
//! [`ExecutionContext`] (DESIGN.md §16).
//!
//! `tests/fault_recovery.rs` pins the *mechanics* (a panic surfaces typed,
//! the arena heals, the context recovers); this file pins the *service*
//! built on top: requests keep being answered — bit-identically — while
//! workers are killed, wedged past their deadline, and retried.
//!
//! The fault hooks are compiled in via this package's dev-dependency on
//! `symspmv-runtime` with the `fault-injection` feature.

use std::sync::Arc;
use std::time::Duration;

use symspmv::core::{
    FallbackKernel, ReductionMethod, Resilient, RetryPolicy, Served, SymFormat, SymSpmv,
    SymSpmvError,
};
use symspmv::runtime::{ExecutionContext, PoolHealth, Supervision};
use symspmv::sparse::dense::seeded_vector;
use symspmv::sparse::{CooMatrix, SssMatrix};

fn test_matrix() -> CooMatrix {
    symspmv::sparse::gen::banded_random(400, 15, 7.0, 41)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|f| f.to_bits()).collect()
}

/// The serial SSS reference — what the fallback must reproduce bit-for-bit.
fn serial_reference(coo: &CooMatrix, x: &[f64]) -> Vec<f64> {
    let sss = SssMatrix::from_coo(coo, 0.0).unwrap_or_else(|e| panic!("valid matrix: {e}"));
    let mut y = vec![0.0; x.len()];
    sss.spmv(x, &mut y);
    y
}

fn service_over(
    coo: &CooMatrix,
    ctx: &Arc<ExecutionContext>,
    policy: RetryPolicy,
) -> Resilient<SymSpmv> {
    let kernel = SymSpmv::try_from_coo(coo, ctx, ReductionMethod::Indexing, SymFormat::Sss)
        .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
    let fallback = FallbackKernel::from_coo_kind(
        coo,
        symspmv::sparse::symmetry::SymmetryKind::Symmetric,
        Arc::clone(ctx),
    )
    .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
    Resilient::new(kernel, fallback, policy)
}

const DEADLINE: Duration = Duration::from_millis(250);

#[test]
fn wedged_round_degrades_to_the_fallback_and_parallel_service_resumes() {
    let coo = test_matrix();
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 17);
    let want = serial_reference(&coo, &x);

    let ctx = ExecutionContext::new(3);
    let policy =
        RetryPolicy::new(2).with_backoff(Duration::from_micros(50), Duration::from_millis(1));
    let mut service = service_over(&coo, &ctx, policy);
    let mut y = vec![0.0; n];

    // Clean request: the parallel baseline every later serve is held to.
    let served = service
        .spmv_within(&x, &mut y, Supervision::deadline_within(DEADLINE))
        .unwrap_or_else(|e| panic!("clean request failed: {e}"));
    assert!(matches!(served, Served::Parallel { attempts: 1 }));
    let y_base = y.clone();

    // Wedge a worker well past a short deadline: the watchdog must mark
    // the pool, the request must degrade onto the serial fallback, and the
    // answer must still be bit-identical to the serial reference.
    ctx.fault_plan()
        .arm_worker_wedge(1, 0, Duration::from_millis(300));
    let served = service
        .spmv_within(
            &x,
            &mut y,
            Supervision::deadline_within(Duration::from_millis(100)),
        )
        .unwrap_or_else(|e| panic!("wedged request must be served, got {e}"));
    match &served {
        Served::Fallback {
            cause: SymSpmvError::DeadlineExceeded { wedged: true },
        } => {}
        other => panic!("expected a wedged-deadline fallback serve, got {other:?}"),
    }
    assert_eq!(bits(&y), bits(&want), "fallback serve is not the reference");

    // The round drained before the call returned: the pool is back from
    // Wedged (now Degraded), the tardy worker was respawned, the wedge and
    // failure were counted.
    assert_eq!(ctx.health(), PoolHealth::Degraded);
    assert!(ctx.health_state().wedges() >= 1);
    assert!(ctx.pool_failures() >= 1);
    assert!(ctx.pool_respawns() >= 1);
    assert!(ctx.arena_all_free_zero());

    // Parallel service resumes on the healed pool, bit-identical to the
    // pre-wedge baseline.
    let served = service
        .spmv_within(&x, &mut y, Supervision::deadline_within(DEADLINE))
        .unwrap_or_else(|e| panic!("post-wedge request failed: {e}"));
    assert!(matches!(served, Served::Parallel { attempts: 1 }));
    assert_eq!(bits(&y), bits(&y_base));
    assert_eq!(service.parallel_serves(), 2);
    assert_eq!(service.fallback_serves(), 1);
}

/// The same degradation contract for the *scheduled* strategy: a wedged
/// worker inside a coloring run (the race kernel's barriered group
/// rounds) trips the deadline watchdog, `Resilient` degrades the request
/// onto the serial fallback bit-identically, and parallel race service
/// resumes on the healed pool.
#[test]
fn wedged_coloring_run_degrades_to_the_fallback_and_race_service_resumes() {
    let coo = test_matrix();
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 17);
    let want = serial_reference(&coo, &x);

    let ctx = ExecutionContext::new(3);
    let policy =
        RetryPolicy::new(2).with_backoff(Duration::from_micros(50), Duration::from_millis(1));
    let kernel = SymSpmv::try_from_coo(&coo, &ctx, ReductionMethod::Race, SymFormat::Sss)
        .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
    let fallback = FallbackKernel::from_coo_kind(
        &coo,
        symspmv::sparse::symmetry::SymmetryKind::Symmetric,
        Arc::clone(&ctx),
    )
    .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
    let mut service = Resilient::new(kernel, fallback, policy);
    let mut y = vec![0.0; n];

    // Clean race request: the parallel baseline.
    let served = service
        .spmv_within(&x, &mut y, Supervision::deadline_within(DEADLINE))
        .unwrap_or_else(|e| panic!("clean request failed: {e}"));
    assert!(matches!(served, Served::Parallel { attempts: 1 }));
    let y_base = y.clone();

    // Wedge worker 1 in the next round (a group round of the schedule)
    // well past a short deadline.
    ctx.fault_plan()
        .arm_worker_wedge(1, 1, Duration::from_millis(300));
    let served = service
        .spmv_within(
            &x,
            &mut y,
            Supervision::deadline_within(Duration::from_millis(100)),
        )
        .unwrap_or_else(|e| panic!("wedged coloring run must be served, got {e}"));
    match &served {
        Served::Fallback {
            cause: SymSpmvError::DeadlineExceeded { wedged: true },
        } => {}
        other => panic!("expected a wedged-deadline fallback serve, got {other:?}"),
    }
    assert_eq!(bits(&y), bits(&want), "fallback serve is not the reference");
    assert_eq!(ctx.health(), PoolHealth::Degraded);
    assert!(ctx.pool_respawns() >= 1);
    assert!(ctx.arena_all_free_zero());

    // Parallel race service resumes, bit-identical to the baseline.
    let served = service
        .spmv_within(&x, &mut y, Supervision::deadline_within(DEADLINE))
        .unwrap_or_else(|e| panic!("post-wedge request failed: {e}"));
    assert!(matches!(served, Served::Parallel { attempts: 1 }));
    assert_eq!(bits(&y), bits(&y_base));
    assert_eq!(service.parallel_serves(), 2);
    assert_eq!(service.fallback_serves(), 1);
}

#[test]
fn worker_kills_are_retried_transparently() {
    let coo = test_matrix();
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 19);

    let ctx = ExecutionContext::new(3);
    let policy =
        RetryPolicy::new(3).with_backoff(Duration::from_micros(50), Duration::from_millis(1));
    let mut service = service_over(&coo, &ctx, policy);
    let mut y = vec![0.0; n];

    service
        .spmv(&x, &mut y)
        .unwrap_or_else(|e| panic!("clean request failed: {e}"));
    let y_base = y.clone();

    for tid in 0..3 {
        ctx.fault_plan().arm_worker_panic(tid, 0);
        let served = service
            .spmv_within(&x, &mut y, Supervision::deadline_within(DEADLINE))
            .unwrap_or_else(|e| panic!("killed-worker request must be retried, got {e}"));
        assert!(
            matches!(served, Served::Parallel { attempts: 2 }),
            "tid {tid}: expected a second-attempt parallel serve, got {served:?}"
        );
        assert_eq!(bits(&y), bits(&y_base), "tid {tid}: retried serve diverges");
    }
    assert_eq!(ctx.pool_failures(), 3);
    assert_eq!(ctx.pool_respawns(), 3);
    assert_eq!(service.fallback_serves(), 0);
}

#[test]
fn retry_exhaustion_degrades_to_the_fallback() {
    let coo = test_matrix();
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 23);
    let want = serial_reference(&coo, &x);

    let ctx = ExecutionContext::new(3);
    let policy =
        RetryPolicy::new(2).with_backoff(Duration::from_micros(50), Duration::from_millis(1));
    let mut service = service_over(&coo, &ctx, policy);
    let mut y = vec![0.0; n];
    service
        .spmv(&x, &mut y)
        .unwrap_or_else(|e| panic!("warm-up failed: {e}"));

    // Kill a worker in the first round of *both* attempts: attempt 1 dies
    // in the next pool round, the retry's multiply is the round after.
    ctx.fault_plan().arm_worker_panic(0, 0);
    ctx.fault_plan().arm_worker_panic(1, 1);
    let served = service
        .spmv_within(&x, &mut y, Supervision::deadline_within(DEADLINE))
        .unwrap_or_else(|e| panic!("exhausted request must still be served, got {e}"));
    match &served {
        Served::Fallback {
            cause: SymSpmvError::RetriesExhausted { attempts: 2, .. },
        } => {}
        other => panic!("expected a retries-exhausted fallback serve, got {other:?}"),
    }
    assert_eq!(bits(&y), bits(&want));
    assert!(ctx.arena_all_free_zero());
}

#[test]
fn resilient_cg_rides_through_an_injected_worker_death() {
    use symspmv::solver::{cg, resilient_cg, CgConfig};

    let coo = symspmv::sparse::gen::laplacian_2d(22, 22);
    let n = coo.nrows() as usize;
    let b = seeded_vector(n, 31);
    let config = CgConfig {
        max_iters: 400,
        ..CgConfig::default()
    };

    // Plain CG on a clean context: the bitwise yardstick.
    let clean_ctx = ExecutionContext::new(3);
    let mut clean =
        SymSpmv::try_from_coo(&coo, &clean_ctx, ReductionMethod::Indexing, SymFormat::Sss)
            .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
    let mut x_ref = vec![0.0; n];
    let outcome_ref = cg(&mut clean, &b, &mut x_ref, &config);
    assert!(outcome_ref.converged, "reference CG must converge");

    // Same solve on a faulted context: a worker dies a few rounds into the
    // solve; the wrapper restarts the attempt on the healed pool and the
    // final iterate is bit-identical to the clean run.
    let ctx = ExecutionContext::new(3);
    let mut kernel = SymSpmv::try_from_coo(&coo, &ctx, ReductionMethod::Indexing, SymFormat::Sss)
        .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
    let mut fallback = FallbackKernel::from_coo_kind(
        &coo,
        symspmv::sparse::symmetry::SymmetryKind::Symmetric,
        Arc::clone(&ctx),
    )
    .unwrap_or_else(|e| panic!("valid matrix rejected: {e}"));
    ctx.fault_plan().arm_worker_panic(2, 5);
    let policy =
        RetryPolicy::new(3).with_backoff(Duration::from_micros(50), Duration::from_millis(1));
    let mut x_sol = vec![0.0; n];
    let served = resilient_cg(
        &mut kernel,
        &mut fallback,
        &b,
        &mut x_sol,
        &config,
        &policy,
        None,
    )
    .unwrap_or_else(|e| panic!("resilient solve failed: {e}"));
    assert!(
        !served.is_fallback(),
        "one kill must not exhaust the policy"
    );
    assert!(served.outcome.converged);
    assert!(ctx.pool_respawns() >= 1, "the dead worker was respawned");
    assert_eq!(
        bits(&x_sol),
        bits(&x_ref),
        "post-respawn rerun diverges from the clean solve"
    );
}

/// A miniature in-process chaos soak: a deterministic schedule of kills,
/// delays and wedges over one service; every request must be served —
/// parallel serves bit-identical to the fault-free baseline, fallback
/// serves bit-identical to the serial reference — and the context must end
/// the soak with a clean arena.
#[test]
fn mini_chaos_soak_serves_every_request_bit_identically() {
    let coo = test_matrix();
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 37);
    let want = serial_reference(&coo, &x);

    let p = 3usize;
    let ctx = ExecutionContext::new(p);
    let policy =
        RetryPolicy::new(3).with_backoff(Duration::from_micros(50), Duration::from_millis(1));
    let mut service = service_over(&coo, &ctx, policy);
    let mut y = vec![0.0; n];
    service
        .spmv(&x, &mut y)
        .unwrap_or_else(|e| panic!("baseline failed: {e}"));
    let y_base = y.clone();

    // Tiny LCG so the schedule is deterministic and self-contained.
    let mut state = 0x5EED_u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };

    let mut fallbacks = 0usize;
    for req in 0..30 {
        let tid = (rng() % p as u64) as usize;
        match rng() % 5 {
            0 => ctx.fault_plan().arm_worker_panic(tid, 0),
            1 => ctx
                .fault_plan()
                .arm_worker_delay(tid, 0, Duration::from_millis(2)),
            2 => ctx
                .fault_plan()
                .arm_worker_wedge(tid, 0, Duration::from_millis(300)),
            _ => {}
        }
        let served = service
            .spmv_within(
                &x,
                &mut y,
                Supervision::deadline_within(Duration::from_millis(150)),
            )
            .unwrap_or_else(|e| panic!("request {req}: availability lost: {e}"));
        match served {
            Served::Parallel { .. } => assert_eq!(
                bits(&y),
                bits(&y_base),
                "request {req}: parallel serve diverges from the baseline"
            ),
            Served::Fallback { .. } => {
                fallbacks += 1;
                assert_eq!(
                    bits(&y),
                    bits(&want),
                    "request {req}: fallback serve diverges from the reference"
                );
            }
        }
    }
    assert_eq!(service.parallel_serves() + service.fallback_serves(), 31);
    assert!(
        fallbacks >= 1,
        "the schedule contains wedges; at least one must degrade"
    );
    assert!(ctx.arena_all_free_zero());
    ctx.fault_plan().disarm_all();
}
