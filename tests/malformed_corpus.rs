//! Table-driven corpus of malformed MatrixMarket files.
//!
//! Every fixture in `tests/fixtures/malformed/` must produce a *structured*
//! [`SparseError`] — never a panic, never a silently wrong matrix. The
//! table below pins the expected error class per file; a fixture on disk
//! with no table entry fails the test, so the corpus cannot rot.

use std::path::PathBuf;
use symspmv::core::SymSpmvError;
use symspmv::sparse::{mm, SparseError};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("malformed")
}

/// Expected error class for one fixture.
enum Expect {
    Parse,
    NonFinite,
    OutOfBounds,
    UpperTriangle,
    SkewDiagonal,
    Overflow,
}

impl Expect {
    fn matches(&self, err: &SparseError) -> bool {
        match self {
            Expect::Parse => matches!(err, SparseError::Parse { .. }),
            Expect::NonFinite => matches!(err, SparseError::NonFiniteValue { .. }),
            Expect::OutOfBounds => matches!(err, SparseError::IndexOutOfBounds { .. }),
            Expect::UpperTriangle => matches!(err, SparseError::UpperTriangleInSymmetric { .. }),
            Expect::SkewDiagonal => matches!(err, SparseError::DiagonalInSkewSymmetric { .. }),
            Expect::Overflow => matches!(err, SparseError::IndexOverflow { .. }),
        }
    }
}

const TABLE: &[(&str, Expect)] = &[
    ("empty.mtx", Expect::Parse),
    ("bad_banner.mtx", Expect::Parse),
    ("not_coordinate.mtx", Expect::Parse),
    ("bad_field.mtx", Expect::Parse),
    ("bad_symmetry.mtx", Expect::Parse),
    ("missing_size.mtx", Expect::Parse),
    ("bad_size_line.mtx", Expect::Parse),
    ("truncated.mtx", Expect::Parse),
    ("surplus_entries.mtx", Expect::Parse),
    ("zero_index.mtx", Expect::Parse),
    ("bad_value.mtx", Expect::Parse),
    ("index_out_of_bounds.mtx", Expect::OutOfBounds),
    ("upper_triangle_symmetric.mtx", Expect::UpperTriangle),
    ("skew_diagonal_entry.mtx", Expect::SkewDiagonal),
    ("skew_upper_triangle.mtx", Expect::UpperTriangle),
    ("skew_pattern_field.mtx", Expect::Parse),
    ("nan_value.mtx", Expect::NonFinite),
    ("inf_value.mtx", Expect::NonFinite),
    ("index_overflow.mtx", Expect::Overflow),
    ("lying_huge_nnz.mtx", Expect::Parse),
];

#[test]
fn every_malformed_fixture_yields_a_structured_error() {
    for (name, expect) in TABLE {
        let path = corpus_dir().join(name);
        let result = std::panic::catch_unwind(|| mm::read_matrix_market_file(&path))
            .unwrap_or_else(|_| panic!("{name}: the reader PANICKED instead of returning Err"));
        let err = match result {
            Err(e) => e,
            Ok(_) => panic!("{name}: parsed successfully but should have been rejected"),
        };
        assert!(
            expect.matches(&err),
            "{name}: wrong error class, got {err:?} ({err})"
        );
        // The Display form must be non-empty and not a Debug dump.
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn corpus_is_fully_covered_by_the_table() {
    let mut on_disk: Vec<String> = std::fs::read_dir(corpus_dir())
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable dir entry").file_name().into_string())
        .map(|n| n.expect("utf-8 file name"))
        .collect();
    on_disk.sort();
    let mut in_table: Vec<String> = TABLE.iter().map(|(n, _)| n.to_string()).collect();
    in_table.sort();
    assert_eq!(
        on_disk, in_table,
        "tests/fixtures/malformed/ and the test table must list the same files"
    );
}

#[test]
fn parse_errors_classify_as_parse_in_the_taxonomy() {
    let err = mm::read_matrix_market_file(corpus_dir().join("truncated.mtx")).unwrap_err();
    assert!(matches!(SymSpmvError::from(err), SymSpmvError::Parse(_)));

    let err =
        mm::read_matrix_market_file(corpus_dir().join("index_out_of_bounds.mtx")).unwrap_err();
    assert!(matches!(
        SymSpmvError::from(err),
        SymSpmvError::InvalidStructure(_)
    ));
}
