//! MatrixMarket interchange: write a generated matrix, read it back, and
//! drive the full kernel stack from the file — the path a user with real
//! UF-collection matrices would take.

use symspmv::sparse::dense::{assert_vec_close, seeded_vector, DenseMatrix};
use symspmv::sparse::{mm, SssMatrix, SymmetryKind};
use symspmv_harness::kernels::{build_kernel, KernelSpec};

#[test]
fn file_round_trip_drives_kernels() {
    let coo = symspmv::sparse::gen::block_structural(60, 3, 6.0, 12, 5);
    let n = coo.nrows() as usize;

    // Write symmetric MatrixMarket to a temp file.
    let dir = std::env::temp_dir().join("symspmv_mm_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("matrix.mtx");
    {
        let mut f = std::fs::File::create(&path).unwrap();
        let mut canon = coo.clone();
        canon.canonicalize();
        mm::write_matrix_market(&mut f, &canon, true).unwrap();
    }

    // Read it back and check exact equality.
    let (loaded, hdr) = mm::read_matrix_market_file(&path).unwrap();
    assert_eq!(hdr.symmetry, mm::MmSymmetry::Symmetric);
    let mut canon = coo.clone();
    canon.canonicalize();
    assert_eq!(loaded, canon);

    // Build every kernel from the loaded matrix and cross-check.
    let x = seeded_vector(n, 2);
    let mut y_ref = vec![0.0; n];
    SssMatrix::from_coo(&loaded, 0.0)
        .unwrap()
        .spmv(&x, &mut y_ref);
    let ctx = symspmv::runtime::ExecutionContext::new(3);
    for spec in KernelSpec::figure11_lineup() {
        let mut k = build_kernel(spec, &loaded, &ctx).unwrap();
        let mut y = vec![0.0; n];
        k.spmv(&x, &mut y);
        assert_vec_close(&y, &y_ref, 1e-12);
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn general_header_loads_symmetric_content() {
    // A symmetric matrix stored as `general` must still feed the
    // symmetric formats after the symmetry check.
    let coo = symspmv::sparse::gen::laplacian_2d(6, 6);
    let mut buf = Vec::new();
    {
        let mut canon = coo.clone();
        canon.canonicalize();
        mm::write_matrix_market(&mut buf, &canon, false).unwrap();
    }
    let (loaded, hdr) = mm::read_matrix_market(&buf[..]).unwrap();
    assert_eq!(hdr.symmetry, mm::MmSymmetry::General);
    assert!(loaded.is_symmetric(0.0));
    assert!(SssMatrix::from_coo(&loaded, 0.0).is_ok());
}

#[test]
fn skew_fixture_loads_and_multiplies() {
    // The README quickstart path: load a skew-symmetric MatrixMarket file
    // and run the skew SSS kernel built from it.
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("convection_skew_5.mtx");
    let (coo, hdr) = mm::read_matrix_market_file(&path).unwrap();
    assert_eq!(hdr.symmetry, mm::MmSymmetry::SkewSymmetric);
    assert!(coo.is_skew_symmetric(0.0));

    let sss = SssMatrix::from_coo_kind(&coo, SymmetryKind::Skew, 0.0).unwrap();
    let n = coo.nrows() as usize;
    let x = seeded_vector(n, 7);
    let mut y = vec![0.0; n];
    sss.spmv(&x, &mut y);

    // Against the dense reference of the expanded matrix.
    let mut y_ref = vec![0.0; n];
    DenseMatrix::from_coo(&coo).matvec(&x, &mut y_ref);
    assert_vec_close(&y, &y_ref, 1e-13);

    // x' * (A * x) vanishes for a skew-symmetric A.
    let quad: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
    assert!(quad.abs() < 1e-12, "x'Ax = {quad} for skew A");
}

#[test]
fn skew_round_trip_through_file() {
    let coo = symspmv::sparse::gen::skew_convection(40, 5, 4.0, 11);
    let dir = std::env::temp_dir().join("symspmv_mm_skew_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("skew.mtx");
    {
        let mut f = std::fs::File::create(&path).unwrap();
        mm::write_matrix_market_as(&mut f, &coo, mm::MmSymmetry::SkewSymmetric).unwrap();
    }
    let (loaded, hdr) = mm::read_matrix_market_file(&path).unwrap();
    assert_eq!(hdr.symmetry, mm::MmSymmetry::SkewSymmetric);
    assert_eq!(loaded, coo);
    std::fs::remove_file(&path).ok();
}
