//! Buffer-arena reuse must be invisible to results: repeated `spmv` calls
//! through one [`ExecutionContext`] lease recycled local vectors from the
//! arena, and must produce bit-identical output to a freshly built kernel
//! (whose arena has never been used), for every reduction strategy.

use symspmv::core::{ParallelSpmv, ReductionMethod, SymFormat, SymSpmv};
use symspmv::runtime::ExecutionContext;
use symspmv::sparse::dense::seeded_vector;

const METHODS: [ReductionMethod; 3] = [
    ReductionMethod::Naive,
    ReductionMethod::EffectiveRanges,
    ReductionMethod::Indexing,
];

#[test]
fn consecutive_spmv_calls_bit_identical_to_fresh_kernel() {
    let coo = symspmv::sparse::gen::banded_random(700, 18, 7.0, 21);
    let n = 700;
    let x = seeded_vector(n, 13);

    for method in METHODS {
        // Shared context: the second call re-leases the buffers the first
        // call returned to the arena.
        let ctx = ExecutionContext::new(4);
        let mut k = SymSpmv::from_coo(&coo, &ctx, method, SymFormat::Sss).unwrap();
        let mut y1 = vec![0.0; n];
        k.spmv(&x, &mut y1);
        let free_after_first = ctx.arena_free_buffers();
        let mut y2 = vec![f64::NAN; n];
        k.spmv(&x, &mut y2);
        // The second call drew from the arena instead of growing it.
        assert_eq!(
            ctx.arena_free_buffers(),
            free_after_first,
            "{method:?}: arena grew"
        );

        // Fresh context and kernel: first-ever lease, brand-new buffers.
        let fresh_ctx = ExecutionContext::new(4);
        let mut fresh = SymSpmv::from_coo(&coo, &fresh_ctx, method, SymFormat::Sss).unwrap();
        let mut y_fresh = vec![0.0; n];
        fresh.spmv(&x, &mut y_fresh);

        for i in 0..n {
            assert_eq!(y1[i], y2[i], "{method:?}: reuse changed row {i}");
            assert_eq!(
                y1[i].to_bits(),
                y_fresh[i].to_bits(),
                "{method:?}: recycled buffers diverge from fresh kernel at row {i}"
            );
        }
    }
}

#[test]
fn arena_shared_across_kernels_of_different_methods() {
    // Kernels with different strategies on one context lease from the same
    // arena; interleaving them must not leak state between calls.
    let coo = symspmv::sparse::gen::banded_random(400, 12, 6.0, 7);
    let n = 400;
    let x = seeded_vector(n, 3);
    let ctx = ExecutionContext::new(3);

    let mut kernels: Vec<SymSpmv> = METHODS
        .iter()
        .map(|&m| SymSpmv::from_coo(&coo, &ctx, m, SymFormat::Sss).unwrap())
        .collect();

    let mut first = Vec::new();
    for k in kernels.iter_mut() {
        let mut y = vec![0.0; n];
        k.spmv(&x, &mut y);
        first.push(y);
    }
    // Second round interleaved in reverse order, leasing recycled buffers.
    for (idx, k) in kernels.iter_mut().enumerate().rev() {
        let mut y = vec![f64::NAN; n];
        k.spmv(&x, &mut y);
        for i in 0..n {
            assert_eq!(
                y[i].to_bits(),
                first[idx][i].to_bits(),
                "kernel {idx}, row {i}"
            );
        }
    }
}
