//! End-to-end CG: reorder → build format → solve, for every kernel, on
//! suite analogs — the §V-F pipeline.

use symspmv::reorder::rcm::rcm_reorder;
use symspmv::runtime::ExecutionContext;
use symspmv::solver::{cg, CgConfig};
use symspmv::sparse::dense::seeded_vector;
use symspmv::sparse::suite;
use symspmv_harness::kernels::{build_kernel, KernelSpec};

fn check_solution(coo: &symspmv::sparse::CooMatrix, x: &[f64], b: &[f64], tol: f64) {
    let mut c = coo.clone();
    c.canonicalize();
    let mut ax = vec![0.0; b.len()];
    c.spmv_reference(x, &mut ax);
    let err: f64 = ax
        .iter()
        .zip(b)
        .map(|(a, bb)| (a - bb) * (a - bb))
        .sum::<f64>()
        .sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err <= tol * bn.max(1.0), "true residual {err} vs tol {tol}");
}

#[test]
fn cg_all_formats_on_reordered_suite_matrix() {
    let m = suite::generate(suite::spec_by_name("thermal2").unwrap(), 0.002);
    let coo = rcm_reorder(&m.coo).unwrap();
    let n = coo.nrows() as usize;
    let b = seeded_vector(n, 42);
    let cfg = CgConfig {
        max_iters: 4 * n,
        rel_tol: 1e-8,
        record_history: false,
    };

    let ctx = ExecutionContext::new(4);
    for spec in KernelSpec::figure11_lineup() {
        let mut k = build_kernel(spec, &coo, &ctx).unwrap();
        let mut x = vec![0.0; n];
        let res = cg(&mut *k, &b, &mut x, &cfg);
        assert!(
            res.converged,
            "{} did not converge in {} iters",
            k.name(),
            res.iterations
        );
        check_solution(&coo, &x, &b, 1e-6);
    }
}

#[test]
fn cg_iteration_counts_identical_across_formats() {
    // All formats represent the same operator, so CG must take the same
    // trajectory (up to floating-point roundoff) — a strong equivalence
    // check on the kernels.
    let m = suite::generate(suite::spec_by_name("bmw7st_1").unwrap(), 0.002);
    let n = m.coo.nrows() as usize;
    let b = seeded_vector(n, 1);
    let cfg = CgConfig {
        max_iters: 300,
        rel_tol: 1e-6,
        record_history: true,
    };

    let ctx = ExecutionContext::new(3);
    let mut iters = Vec::new();
    for spec in KernelSpec::figure11_lineup() {
        let mut k = build_kernel(spec, &m.coo, &ctx).unwrap();
        let mut x = vec![0.0; n];
        let res = cg(&mut *k, &b, &mut x, &cfg);
        iters.push((k.name().into_owned(), res.iterations));
    }
    let reference = iters[0].1;
    for (name, it) in &iters {
        assert!(
            (*it as i64 - reference as i64).abs() <= 2,
            "{name} took {it} iterations vs {reference}"
        );
    }
}

#[test]
fn cg_respects_fixed_iteration_budget() {
    let m = suite::generate(suite::spec_by_name("G3_circuit").unwrap(), 0.0008);
    let n = m.coo.nrows() as usize;
    let b = seeded_vector(n, 9);
    let cfg = CgConfig {
        max_iters: 32,
        rel_tol: 0.0,
        record_history: true,
    };
    let ctx = ExecutionContext::new(2);
    let mut k = build_kernel(KernelSpec::parse("sss-idx").unwrap(), &m.coo, &ctx).unwrap();
    let mut x = vec![0.0; n];
    let res = cg(&mut *k, &b, &mut x, &cfg);
    assert_eq!(res.iterations, 32);
    assert_eq!(res.history.len(), 33);
}
